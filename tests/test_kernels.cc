/**
 * @file
 * Vectorized scan-kernel tests (DESIGN.md §12).
 *
 * Four contracts:
 *  1. Kernel semantics — matchOne agrees with Condition::matches, the
 *     branch-free scalar kernels agree with matchOne (randomized over
 *     all ops x null densities x strides x batch-boundary offsets), and
 *     the AVX2 forms agree with the scalar forms slot-for-slot.  The
 *     NULL-sentinel edges (BETWEEN abutting INT64_MIN, an Eq literal
 *     with the sentinel bit pattern) never match in either form.
 *  2. Zone maps — Table::append maintains exact per-(block, column)
 *     min/max/null summaries under construction, Database::insert, and
 *     an adaptive repartition swap; zoneCanMatch never skips a block
 *     containing a match.
 *  3. Executor equivalence — with vectorization on, results are
 *     bit-identical to the row-at-a-time loop across thread counts,
 *     morsel sizes, and layouts, and the simulated counters (Fig. 6-7
 *     path) are exactly unchanged.
 *  4. Observability — block scan/skip counters reach the registry and
 *     the Prometheus export, and a clustered low-selectivity BETWEEN
 *     actually skips blocks.
 *
 * The whole binary runs twice in ctest: once with default dispatch and
 * once under DVP_FORCE_SCALAR=1 (test_kernels_scalar), so the executor
 * suites cover both dispatch outcomes end to end.
 */

#include <gtest/gtest.h>

#include <climits>
#include <cstdlib>
#include <vector>

#include "adaptive/adaptive_engine.hh"
#include "engine/database.hh"
#include "engine/executor.hh"
#include "engine/kernels.hh"
#include "engine/query.hh"
#include "nobench/generator.hh"
#include "nobench/queries.hh"
#include "nobench/workload.hh"
#include "obs/export.hh"
#include "obs/metrics.hh"
#include "storage/table.hh"
#include "storage/value.hh"
#include "util/arena.hh"
#include "util/random.hh"

namespace dvp
{
namespace
{

using engine::Condition;
using engine::CondOp;
using engine::Database;
using engine::DataSet;
using engine::Executor;
using engine::Query;
using engine::QueryKind;
using engine::ResultSet;
using layout::Layout;
using storage::kNullSlot;
using storage::kZoneRows;
using storage::Slot;
using storage::Table;
using storage::ZoneEntry;
namespace k = engine::kernels;

size_t
testDocs()
{
    if (const char *env = std::getenv("DVP_TEST_DOCS"))
        return std::strtoull(env, nullptr, 10);
    return 5000;
}

constexpr k::PredOp kAllOps[] = {
    k::PredOp::Eq,      k::PredOp::Ne,     k::PredOp::Lt,
    k::PredOp::Le,      k::PredOp::Gt,     k::PredOp::Ge,
    k::PredOp::Between, k::PredOp::StrEq,  k::PredOp::IsNull,
    k::PredOp::NotNull,
};

/** Random slot: numeric in a small range, string-tagged, or NULL. */
Slot
randomSlot(Rng &rng, double null_density, double string_density)
{
    double d = rng.uniform();
    if (d < null_density)
        return kNullSlot;
    if (d < null_density + string_density)
        return storage::encodeString(
            static_cast<storage::StringId>(rng.below(16)));
    // A narrow numeric domain (with negatives) keeps every op's match
    // probability far from 0 and 1.
    return rng.range(-8, 8);
}

/** Reference selection via matchOne (the single-slot semantics). */
std::vector<uint32_t>
oracleSel(const k::Pred &p, const Slot *col, size_t stride, size_t n)
{
    std::vector<uint32_t> out;
    for (size_t i = 0; i < n; ++i)
        if (k::matchOne(p, col[i * stride]))
            out.push_back(static_cast<uint32_t>(i));
    return out;
}

void
expectSelEq(const k::SelVec &sel, const std::vector<uint32_t> &ref,
            const char *what)
{
    ASSERT_EQ(sel.n, ref.size()) << what;
    for (uint32_t i = 0; i < sel.n; ++i)
        ASSERT_EQ(sel.idx[i], ref[i]) << what << " at " << i;
}

// ---------------------------------------------------------------------
// 1. Kernel semantics
// ---------------------------------------------------------------------

TEST(KernelSemantics, MatchOneAgreesWithConditionMatches)
{
    Rng rng(1);
    std::vector<Condition> conds;
    Condition eq;
    eq.op = CondOp::Eq;
    eq.lo = 3;
    conds.push_back(eq);
    Condition eq_str;
    eq_str.op = CondOp::Eq;
    eq_str.lo = storage::encodeString(5);
    conds.push_back(eq_str);
    Condition any;
    any.op = CondOp::AnyEq;
    any.lo = storage::encodeString(2);
    conds.push_back(any);
    Condition bt;
    bt.op = CondOp::Between;
    bt.lo = -2;
    bt.hi = 4;
    conds.push_back(bt);

    for (const Condition &c : conds) {
        k::Pred p = k::fromCondition(c);
        for (int i = 0; i < 20000; ++i) {
            Slot s = randomSlot(rng, 0.2, 0.2);
            ASSERT_EQ(k::matchOne(p, s), c.matches(s))
                << "op=" << static_cast<int>(c.op) << " slot=" << s;
        }
        // The sentinel and tag-boundary values themselves.
        for (Slot s : {kNullSlot, kNullSlot + 1, INT64_MAX, Slot{0},
                       storage::kStringTag, storage::encodeString(0)})
            ASSERT_EQ(k::matchOne(p, s), c.matches(s)) << "slot=" << s;
    }
}

TEST(KernelSemantics, FromConditionMapsStringEqToStrEq)
{
    Condition c;
    c.op = CondOp::Eq;
    c.lo = storage::encodeString(7);
    EXPECT_EQ(k::fromCondition(c).op, k::PredOp::StrEq);
    c.lo = 7;
    EXPECT_EQ(k::fromCondition(c).op, k::PredOp::Eq);
    c.op = CondOp::Between;
    c.hi = 9;
    EXPECT_EQ(k::fromCondition(c).op, k::PredOp::Between);
}

/** Literal pairs exercised per op (lo, hi; hi unused except Between). */
std::vector<std::pair<Slot, Slot>>
literalsFor(k::PredOp op, Rng &rng)
{
    std::vector<std::pair<Slot, Slot>> ls;
    for (int i = 0; i < 4; ++i) {
        Slot lo = rng.range(-8, 8);
        ls.emplace_back(lo, lo + static_cast<Slot>(rng.below(6)));
    }
    if (op == k::PredOp::StrEq)
        for (auto &[lo, hi] : ls)
            lo = hi = storage::encodeString(
                static_cast<storage::StringId>(lo & 15));
    // Edge literals: the sentinel bit pattern, abutting ranges, and
    // extreme bounds.
    ls.emplace_back(kNullSlot, kNullSlot);
    ls.emplace_back(kNullSlot, kNullSlot + 100);
    ls.emplace_back(INT64_MIN + 1, INT64_MAX);
    ls.emplace_back(INT64_MAX, INT64_MAX);
    return ls;
}

/** Batch lengths straddling vector-width and batch boundaries. */
const size_t kLens[] = {0, 1, 3, 4, 5, 7, 63, 64, 100, 2047, 2048};

TEST(KernelSemantics, ScalarKernelMatchesOracle)
{
    Rng rng(2);
    const double null_densities[] = {0.0, 0.1, 0.5, 1.0};
    for (k::PredOp op : kAllOps) {
        k::KernelFn fn = k::scalarKernel(op);
        ASSERT_NE(fn, nullptr);
        for (double nd : null_densities) {
            for (size_t stride : {size_t{1}, size_t{3}, size_t{9}}) {
                for (size_t n : kLens) {
                    std::vector<Slot> data(std::max<size_t>(n, 1) *
                                           stride);
                    for (Slot &s : data)
                        s = randomSlot(rng, nd, 0.2);
                    for (auto [lo, hi] : literalsFor(op, rng)) {
                        k::Pred p{op, lo, hi};
                        k::SelVec sel;
                        fn(data.data(), stride, n, lo, hi, sel);
                        expectSelEq(sel,
                                    oracleSel(p, data.data(), stride, n),
                                    k::predName(op));
                    }
                }
            }
        }
    }
}

TEST(KernelSemantics, SimdKernelMatchesScalarKernel)
{
    if (k::simdKernel(k::PredOp::Eq) == nullptr)
        GTEST_SKIP() << "no AVX2 on this machine";
    Rng rng(3);
    const double null_densities[] = {0.0, 0.1, 0.5, 1.0};
    for (k::PredOp op : kAllOps) {
        k::KernelFn scalar = k::scalarKernel(op);
        k::KernelFn simd = k::simdKernel(op);
        ASSERT_NE(simd, nullptr);
        for (double nd : null_densities) {
            for (size_t stride : {size_t{1}, size_t{3}, size_t{9}}) {
                for (size_t n : kLens) {
                    std::vector<Slot> data(std::max<size_t>(n, 1) *
                                           stride);
                    for (Slot &s : data)
                        s = randomSlot(rng, nd, 0.2);
                    for (auto [lo, hi] : literalsFor(op, rng)) {
                        k::SelVec a, b;
                        scalar(data.data(), stride, n, lo, hi, a);
                        simd(data.data(), stride, n, lo, hi, b);
                        ASSERT_EQ(a.n, b.n) << k::predName(op);
                        for (uint32_t i = 0; i < a.n; ++i)
                            ASSERT_EQ(a.idx[i], b.idx[i])
                                << k::predName(op) << " at " << i;
                    }
                }
            }
        }
    }
}

/** Run @p op over @p data in both forms; expect zero matches. */
void
expectNoMatchBothForms(k::PredOp op, Slot lo, Slot hi,
                       const std::vector<Slot> &data)
{
    k::SelVec sel;
    k::scalarKernel(op)(data.data(), 1, data.size(), lo, hi, sel);
    EXPECT_EQ(sel.n, 0u) << "scalar " << k::predName(op);
    if (k::KernelFn simd = k::simdKernel(op)) {
        simd(data.data(), 1, data.size(), lo, hi, sel);
        EXPECT_EQ(sel.n, 0u) << "avx2 " << k::predName(op);
    }
}

TEST(KernelSemantics, NullSentinelNeverMatches)
{
    // A column of nothing but NULLs (and one stray string).
    std::vector<Slot> nulls(100, kNullSlot);
    nulls[57] = storage::encodeString(3);

    // BETWEEN abutting the sentinel value: [INT64_MIN, x] contains the
    // sentinel bit pattern, yet NULL slots must not match.
    expectNoMatchBothForms(k::PredOp::Between, INT64_MIN,
                           INT64_MIN + 1000, nulls);
    // Unbounded-ish range covering the whole numeric domain: NULLs and
    // strings still excluded (the string makes sel.n 0 only because
    // range ops are numeric-only).
    std::vector<Slot> only_nulls(100, kNullSlot);
    expectNoMatchBothForms(k::PredOp::Between, INT64_MIN, INT64_MAX,
                           only_nulls);
    // An Eq literal with the sentinel bit pattern: compares equal
    // bitwise, must still never match (NULL != NULL in SQL terms).
    expectNoMatchBothForms(k::PredOp::Eq, kNullSlot, kNullSlot,
                           only_nulls);
    // Relational ops against the sentinel bit pattern as a literal.
    expectNoMatchBothForms(k::PredOp::Le, INT64_MIN + 10, 0, only_nulls);
    expectNoMatchBothForms(k::PredOp::Ge, INT64_MIN, 0, only_nulls);
    expectNoMatchBothForms(k::PredOp::Ne, 42, 0, only_nulls);

    // A double reinterpreted to the sentinel's bit pattern is the same
    // 8 bytes; the engine stores no such value, but a column holding
    // the pattern must behave as NULL, not as a number.
    static_assert(static_cast<Slot>(0x8000000000000000ull) == kNullSlot);
    std::vector<Slot> pattern(64,
                              static_cast<Slot>(0x8000000000000000ull));
    expectNoMatchBothForms(k::PredOp::Between, INT64_MIN, INT64_MAX,
                           pattern);
    expectNoMatchBothForms(k::PredOp::Lt, 0, 0, pattern);

    // IsNull is the one op the sentinel must match.
    k::SelVec sel;
    k::scalarKernel(k::PredOp::IsNull)(only_nulls.data(), 1,
                                       only_nulls.size(), 0, 0, sel);
    EXPECT_EQ(sel.n, only_nulls.size());
}

TEST(KernelSemantics, DispatchRespectsForceScalarOverride)
{
    const char *force = std::getenv("DVP_FORCE_SCALAR");
    bool forced = force != nullptr && force[0] != '\0' &&
                  force[0] != '0';
    if (forced) {
        EXPECT_FALSE(k::simdActive());
        EXPECT_STREQ(k::activeForm(), "scalar");
        EXPECT_EQ(k::kernel(k::PredOp::Eq),
                  k::scalarKernel(k::PredOp::Eq));
    } else if (k::simdKernel(k::PredOp::Eq) != nullptr) {
        EXPECT_TRUE(k::simdActive());
        EXPECT_STREQ(k::activeForm(), "avx2");
    }
}

// ---------------------------------------------------------------------
// 2. Zone maps
// ---------------------------------------------------------------------

/** Recompute the zone entries of @p t from its cells. */
std::vector<ZoneEntry>
referenceZones(const Table &t)
{
    std::vector<ZoneEntry> zones(t.blockCount() * t.attrCount());
    for (size_t r = 0; r < t.rows(); ++r) {
        for (size_t c = 0; c < t.attrCount(); ++c) {
            ZoneEntry &z = zones[(r / kZoneRows) * t.attrCount() + c];
            Slot s = t.cell(r, c);
            if (storage::isNull(s)) {
                ++z.nulls;
            } else {
                z.min = std::min(z.min, s);
                z.max = std::max(z.max, s);
                ++z.nonnull;
            }
        }
    }
    return zones;
}

void
expectZonesExact(const Table &t)
{
    std::vector<ZoneEntry> ref = referenceZones(t);
    ASSERT_EQ(t.blockCount(),
              (t.rows() + kZoneRows - 1) / kZoneRows);
    for (size_t b = 0; b < t.blockCount(); ++b) {
        for (size_t c = 0; c < t.attrCount(); ++c) {
            const ZoneEntry &got = t.zone(b, c);
            const ZoneEntry &want = ref[b * t.attrCount() + c];
            EXPECT_EQ(got.min, want.min)
                << t.name() << " block " << b << " col " << c;
            EXPECT_EQ(got.max, want.max)
                << t.name() << " block " << b << " col " << c;
            EXPECT_EQ(got.nonnull, want.nonnull)
                << t.name() << " block " << b << " col " << c;
            EXPECT_EQ(got.nulls, want.nulls)
                << t.name() << " block " << b << " col " << c;
        }
    }
}

TEST(ZoneMaps, MaintainedAcrossAppendsAndBlockBoundaries)
{
    Arena arena;
    Table t("zt", {0, 1, 2}, arena);
    Rng rng(4);
    size_t rows = 2 * kZoneRows + 321; // three blocks, last partial
    int64_t oid = 0;
    for (size_t r = 0; r < rows; ++r) {
        Slot v[3] = {randomSlot(rng, 0.3, 0.2),
                     randomSlot(rng, 0.3, 0.2),
                     randomSlot(rng, 0.3, 0.2)};
        // Occasional all-null rows are omitted by append (sparse
        // omission) and must not open or advance a zone block.
        t.append(oid++, std::span<const Slot>(v, 3));
    }
    EXPECT_GE(t.blockCount(), 2u);
    expectZonesExact(t);
}

TEST(ZoneMaps, AllNullColumnBlockHasEmptyRange)
{
    Arena arena;
    Table t("zn", {0, 1}, arena);
    for (int64_t oid = 0; oid < 100; ++oid) {
        Slot v[2] = {oid, kNullSlot}; // col 1 never set
        t.append(oid, std::span<const Slot>(v, 2));
    }
    const ZoneEntry &z = t.zone(0, 1);
    EXPECT_EQ(z.nonnull, 0u);
    EXPECT_EQ(z.nulls, 100u);
    EXPECT_GT(z.min, z.max); // empty range: initial sentinels
    // No predicate except IsNull can match this block.
    EXPECT_FALSE(k::zoneCanMatch(k::Pred{k::PredOp::Eq, 0, 0}, z));
    EXPECT_FALSE(
        k::zoneCanMatch(k::Pred{k::PredOp::Between, INT64_MIN,
                                INT64_MAX},
                        z));
    EXPECT_FALSE(k::zoneCanMatch(k::Pred{k::PredOp::NotNull, 0, 0}, z));
    EXPECT_TRUE(k::zoneCanMatch(k::Pred{k::PredOp::IsNull, 0, 0}, z));
}

TEST(ZoneMaps, ZoneCanMatchNeverSkipsAMatch)
{
    Rng rng(5);
    for (int round = 0; round < 200; ++round) {
        // A random block summary plus the slots it summarizes.
        size_t n = 1 + rng.below(64);
        std::vector<Slot> block(n);
        ZoneEntry z;
        for (Slot &s : block) {
            s = randomSlot(rng, 0.3, 0.3);
            if (storage::isNull(s)) {
                ++z.nulls;
            } else {
                z.min = std::min(z.min, s);
                z.max = std::max(z.max, s);
                ++z.nonnull;
            }
        }
        for (k::PredOp op : kAllOps) {
            for (auto [lo, hi] : literalsFor(op, rng)) {
                k::Pred p{op, lo, hi};
                bool any = false;
                for (Slot s : block)
                    any = any || k::matchOne(p, s);
                if (any) {
                    EXPECT_TRUE(k::zoneCanMatch(p, z))
                        << k::predName(op) << " lo=" << lo
                        << " hi=" << hi;
                }
            }
        }
    }
}

TEST(ZoneMaps, MaintainedUnderDatabaseInsert)
{
    nobench::Config cfg;
    cfg.numDocs = std::min<size_t>(testDocs(), 3000);
    cfg.seed = 11;
    DataSet data = nobench::generateDataSet(cfg);
    Database db(data, Layout::fixedSize(data.catalog.allAttrs(), 4),
                "hybrid4");

    // Construction-time zones.
    for (size_t ti = 0; ti < db.tableCount(); ++ti)
        expectZonesExact(db.table(ti));

    // Incremental insert across a block boundary.
    nobench::Config more = cfg;
    more.numDocs = cfg.numDocs + 600;
    more.seed = cfg.seed; // same stream: docs [numDocs, numDocs+600)
    DataSet extended = nobench::generateDataSet(more);
    for (size_t d = cfg.numDocs; d < more.numDocs; ++d)
        db.insert(extended.docs[d]);
    for (size_t ti = 0; ti < db.tableCount(); ++ti)
        expectZonesExact(db.table(ti));
}

TEST(ZoneMaps, FreshAfterAdaptiveRepartitionSwap)
{
    nobench::Config cfg;
    cfg.numDocs = std::min<size_t>(testDocs(), 1500);
    cfg.seed = 23;
    DataSet data = nobench::generateDataSet(cfg);
    nobench::QuerySet qs(data, cfg);
    Rng rng(29);

    std::vector<Query> initial;
    for (int t = 0; t < 3; ++t)
        initial.push_back(qs.instantiate(t, rng));

    adaptive::Params prm;
    prm.window = 20;
    prm.changeThreshold = 0.2;
    prm.background = false; // synchronous swap: deterministic
    adaptive::AdaptiveEngine eng(data, initial, prm);

    std::vector<Query> shifted;
    for (int t = 0; t < nobench::kNumTemplates; ++t)
        shifted.push_back(qs.instantiateShifted(t, rng));
    Rng pick(31);
    for (int r = 0;
         r < 200 && eng.adaptation().repartitions.load() == 0; ++r)
        eng.execute(shifted[pick.below(shifted.size())]);
    ASSERT_GE(eng.adaptation().repartitions.load(), 1u)
        << "shifted workload did not trigger a repartition";

    // The swapped-in tables were built fresh, so their zone maps must
    // be exact for every block of every partition.
    std::shared_ptr<Database> db = eng.snapshot();
    for (size_t ti = 0; ti < db->tableCount(); ++ti)
        expectZonesExact(db->table(ti));
}

// ---------------------------------------------------------------------
// 3. Executor equivalence
// ---------------------------------------------------------------------

/** Shared world: one data set, several layouts, NoBench queries. */
struct KernelWorld
{
    nobench::Config cfg;
    DataSet data;
    std::vector<Query> queries; ///< all 11 templates + clustered id scan
    std::vector<std::unique_ptr<Database>> dbs;

    KernelWorld()
    {
        cfg.numDocs = testDocs();
        cfg.seed = 4242;
        data = nobench::generateDataSet(cfg);
        nobench::QuerySet qs(data, cfg);
        Rng rng(7);
        for (int t = 0; t < nobench::kNumTemplates; ++t)
            queries.push_back(qs.instantiate(t, rng));
        queries.push_back(clusteredIdBetween());

        const std::vector<storage::AttrId> attrs =
            data.catalog.allAttrs();
        dbs.push_back(std::make_unique<Database>(
            data, Layout::rowBased(attrs), "row"));
        dbs.push_back(std::make_unique<Database>(
            data, Layout::columnBased(attrs), "column"));
        dbs.push_back(std::make_unique<Database>(
            data, Layout::fixedSize(attrs, 4), "hybrid4"));
    }

    /**
     * BETWEEN on `id`, which equals the oid and is therefore perfectly
     * clustered: zone maps prune every block outside the range.  The
     * range selects ~0.1% of documents.
     */
    Query
    clusteredIdBetween() const
    {
        Query q;
        q.name = "Qid";
        q.kind = QueryKind::Select;
        storage::AttrId id = data.catalog.find("id");
        storage::AttrId num = data.catalog.find("num");
        EXPECT_NE(id, storage::kNoAttr);
        EXPECT_NE(num, storage::kNoAttr);
        q.projected = {id, num};
        q.cond.op = CondOp::Between;
        q.cond.attr = id;
        q.cond.lo = 100;
        q.cond.hi = 100 + static_cast<Slot>(cfg.numDocs / 1000);
        q.selectivity = 0.001;
        return q;
    }
};

KernelWorld &
kworld()
{
    static KernelWorld w;
    return w;
}

void
expectSame(const ResultSet &got, const ResultSet &ref)
{
    EXPECT_EQ(got.rowCount(), ref.rowCount());
    EXPECT_EQ(got.checksum, ref.checksum);
    EXPECT_EQ(got.oids, ref.oids);
    EXPECT_EQ(got.rows, ref.rows); // bit-identical, not just equivalent
    EXPECT_EQ(got.digest(), ref.digest());
}

TEST(VectorizedExecutor, MatchesRowLoopAcrossLayoutsAndThreads)
{
    KernelWorld &w = kworld();
    for (const auto &db : w.dbs) {
        for (const Query &q : w.queries) {
            // The row-at-a-time loop is the oracle.
            Executor oracle(*db);
            oracle.setVectorized(false);
            ResultSet ref = oracle.run(q);

            for (size_t threads : {1u, 2u, 4u, 8u}) {
                Executor exec(*db, threads);
                ASSERT_TRUE(exec.vectorized());
                expectSame(exec.run(q), ref);

                // Block-unaligned morsels: sub-block kernel ranges.
                Executor small(*db, threads);
                small.setMorselRows(64);
                expectSame(small.run(q), ref);
            }
        }
    }
}

TEST(VectorizedExecutor, SimulatedCountersExactlyUnchanged)
{
    // The traced overload must ignore the vectorization knob entirely:
    // identical counters and results whether the executor has
    // vectorization on (default) or explicitly off.
    KernelWorld &w = kworld();
    auto &db = *w.dbs[0];
    for (const Query &q : w.queries) {
        perf::MemoryHierarchy mh_on;
        Executor on(db);
        on.setVectorized(true);
        ResultSet rs_on = on.run(q, mh_on);

        perf::MemoryHierarchy mh_off;
        Executor off(db);
        off.setVectorized(false);
        ResultSet rs_off = off.run(q, mh_off);

        expectSame(rs_on, rs_off);
        auto a = mh_on.counters();
        auto b = mh_off.counters();
        EXPECT_EQ(a.accesses, b.accesses) << q.name;
        EXPECT_EQ(a.l1Misses, b.l1Misses) << q.name;
        EXPECT_EQ(a.l2Misses, b.l2Misses) << q.name;
        EXPECT_EQ(a.l3Misses, b.l3Misses) << q.name;
        EXPECT_EQ(a.tlbMisses, b.tlbMisses) << q.name;
    }
}

// ---------------------------------------------------------------------
// 4. Observability
// ---------------------------------------------------------------------

#ifndef DVP_OBS_DISABLED
TEST(BlockSkipping, ClusteredBetweenSkipsBlocksAndExportsCounters)
{
    KernelWorld &w = kworld();
    if (w.cfg.numDocs <= kZoneRows)
        GTEST_SKIP() << "needs more than one zone block";
    auto &db = *w.dbs[0]; // row layout: id column in the one table
    Query q = w.queries.back(); // the clustered id BETWEEN

    auto &reg = obs::Registry::global();
    uint64_t scanned0 = reg.counter("dvp_blocks_scanned_total").value();
    uint64_t skipped0 = reg.counter("dvp_blocks_skipped_total").value();
    std::string inv_name =
        std::string("dvp_kernel_invocations_total{kernel=\"between\","
                    "form=\"") +
        k::activeForm() + "\"}";
    uint64_t inv0 = reg.counter(inv_name).value();

    Executor exec(db);
    ResultSet rs = exec.run(q);
    EXPECT_GT(rs.rowCount(), 0u);

    uint64_t scanned =
        reg.counter("dvp_blocks_scanned_total").value() - scanned0;
    uint64_t skipped =
        reg.counter("dvp_blocks_skipped_total").value() - skipped0;
    uint64_t inv = reg.counter(inv_name).value() - inv0;

    // id == oid, so the 0.1% range lives in one block and every other
    // block is pruned by its zone map.
    EXPECT_GT(scanned, 0u);
    EXPECT_GT(skipped, 0u);
    EXPECT_EQ(scanned + skipped,
              (db.table(0).rows() + kZoneRows - 1) / kZoneRows);
    EXPECT_EQ(inv, scanned); // one kernel invocation per scanned block

    // All three counters surface in the Prometheus export.
    std::string prom = obs::exportPrometheus(reg);
    EXPECT_NE(prom.find("dvp_blocks_scanned_total"), std::string::npos);
    EXPECT_NE(prom.find("dvp_blocks_skipped_total"), std::string::npos);
    EXPECT_NE(prom.find("dvp_kernel_invocations_total"),
              std::string::npos);
}

TEST(BlockSkipping, RowsScannedIndependentOfThreadsAndMorsels)
{
    // The skip decision is per block, so dvp_rows_scanned_total for a
    // given query must not depend on how morsels partition the scan.
    KernelWorld &w = kworld();
    auto &db = *w.dbs[0];
    Query q = w.queries.back();
    auto &reg = obs::Registry::global();
    std::string name =
        "dvp_rows_scanned_total{layout=\"" + db.name() + "\"}";

    auto scanOnce = [&](size_t threads, size_t morsel) {
        uint64_t before = reg.counter(name).value();
        Executor exec(db, threads);
        if (morsel != 0)
            exec.setMorselRows(morsel);
        exec.run(q);
        return reg.counter(name).value() - before;
    };

    uint64_t serial = scanOnce(1, 0);
    EXPECT_EQ(scanOnce(4, 0), serial);
    EXPECT_EQ(scanOnce(4, 64), serial);
    EXPECT_EQ(scanOnce(8, 100), serial); // block-unaligned morsels
}
#endif // DVP_OBS_DISABLED

} // namespace
} // namespace dvp
