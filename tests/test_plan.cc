/**
 * @file
 * Tests for the physical-plan layer (src/engine/plan*): binding,
 * template signatures, the epoch-keyed plan cache, executor integration
 * (cached execution bit-identical to cold across layouts and thread
 * counts, simulated counters unchanged), swap invalidation through the
 * adaptive engine, and EXPLAIN provenance.
 */

#include <gtest/gtest.h>

#include "adaptive/adaptive_engine.hh"
#include "engine/database.hh"
#include "engine/executor.hh"
#include "engine/plan.hh"
#include "engine/plan_cache.hh"
#include "nobench/generator.hh"
#include "nobench/queries.hh"
#include "nobench/workload.hh"
#include "obs/export.hh"
#include "obs/metrics.hh"
#include "perf/memory_hierarchy.hh"
#include "sql/explain.hh"

namespace dvp::engine
{
namespace
{

/** Shared NoBench world with one database per layout family. */
class PlanWorld : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        cfg.numDocs = 800;
        cfg.seed = 6021;
        data = new DataSet(nobench::generateDataSet(cfg));
        qs = new nobench::QuerySet(*data, cfg);
        auto attrs = data->catalog.allAttrs();
        row = new Database(*data, layout::Layout::rowBased(attrs),
                           "row");
        column = new Database(*data,
                              layout::Layout::columnBased(attrs),
                              "column");
        fixed = new Database(
            *data, layout::Layout::fixedSize(attrs, 12), "fixedSize");
    }
    static void
    TearDownTestSuite()
    {
        delete fixed;
        delete column;
        delete row;
        delete qs;
        delete data;
        fixed = column = row = nullptr;
        qs = nullptr;
        data = nullptr;
    }

    /** One fixed-literal instance of each executable template. */
    static std::vector<Query>
    templates()
    {
        Rng rng(17);
        std::vector<Query> qv;
        for (int i = 0; i < nobench::kNumTemplates; ++i)
            qv.push_back(qs->instantiate(i, rng));
        return qv;
    }

    static nobench::Config cfg;
    static DataSet *data;
    static nobench::QuerySet *qs;
    static Database *row, *column, *fixed;
};

nobench::Config PlanWorld::cfg;
DataSet *PlanWorld::data = nullptr;
nobench::QuerySet *PlanWorld::qs = nullptr;
Database *PlanWorld::row = nullptr;
Database *PlanWorld::column = nullptr;
Database *PlanWorld::fixed = nullptr;

// ---------------------------------------------------------------------
// Binding.
// ---------------------------------------------------------------------

TEST_F(PlanWorld, BindStampsEveryPlan)
{
    for (const Query &q : templates()) {
        SCOPED_TRACE(q.name);
        PhysicalPlan p = bindPlan(*fixed, q);
        EXPECT_EQ(p.kind, q.kind);
        EXPECT_EQ(p.templateName, q.name);
        EXPECT_EQ(p.epoch, fixed->epoch());
        EXPECT_EQ(p.layoutFingerprint, fixed->layoutFingerprint());
        EXPECT_EQ(p.catalogWidth, data->catalog.attrCount());
        EXPECT_EQ(p.signature, planSignature(q));
        EXPECT_EQ(p.key, templateKey(q));
    }
}

TEST_F(PlanWorld, SignatureIgnoresLiteralsButNotShape)
{
    Rng a(1), b(2);
    // Two instances of one template (different keys/ranges) collide.
    EXPECT_EQ(planSignature(qs->instantiate(nobench::kQ5, a)),
              planSignature(qs->instantiate(nobench::kQ5, b)));
    EXPECT_EQ(planSignature(qs->instantiate(nobench::kQ6, a)),
              planSignature(qs->instantiate(nobench::kQ6, b)));
    EXPECT_EQ(templateKey(qs->instantiate(nobench::kQ6, a)),
              templateKey(qs->instantiate(nobench::kQ6, b)));

    // Distinct templates never collide on the canonical key.
    std::vector<Query> qv = templates();
    for (size_t i = 0; i < qv.size(); ++i)
        for (size_t j = i + 1; j < qv.size(); ++j)
            EXPECT_NE(templateKey(qv[i]), templateKey(qv[j]))
                << qv[i].name << " vs " << qv[j].name;
}

TEST_F(PlanWorld, BindResolvesAgainstTheLayout)
{
    Rng rng(3);
    Query q6 = qs->instantiate(nobench::kQ6, rng);

    PhysicalPlan pc = bindPlan(*column, q6);
    ASSERT_EQ(pc.filter.mode, FilterMode::ColumnPredicate);
    EXPECT_GE(pc.filter.table, 0);
    EXPECT_EQ(pc.filter.col, 0); // column store: one attr per table

    // Same template, different layout: different physical locations.
    PhysicalPlan pr = bindPlan(*row, q6);
    ASSERT_EQ(pr.filter.mode, FilterMode::ColumnPredicate);
    EXPECT_EQ(pr.filter.table, 0); // row store: everything in table 0

    // A condition on a column no layout materializes binds to Empty.
    Query ghost = q6;
    ghost.cond.attr = storage::kNoAttr;
    EXPECT_EQ(bindPlan(*fixed, ghost).filter.mode, FilterMode::Empty);
}

// ---------------------------------------------------------------------
// PlanCache.
// ---------------------------------------------------------------------

TEST_F(PlanWorld, CacheHitsAfterFirstExecution)
{
    PlanCache cache;
    Executor exec(*fixed);
    exec.setPlanCache(&cache);

    Rng rng(4);
    Query q = qs->instantiate(nobench::kQ6, rng);
    exec.run(q);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits, 0u);

    exec.run(q);
    EXPECT_EQ(cache.stats().hits, 1u);

    // Another instance of the template reuses the same entry.
    exec.run(qs->instantiate(nobench::kQ6, rng));
    EXPECT_EQ(cache.stats().hits, 2u);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.size(), 1u);

    // A different template cold-binds its own entry.
    exec.run(qs->instantiate(nobench::kQ1, rng));
    EXPECT_EQ(cache.stats().misses, 2u);
    EXPECT_EQ(cache.size(), 2u);
}

TEST_F(PlanWorld, CacheInvalidatesOnEpochChange)
{
    Rng rng(5);
    Query q = qs->instantiate(nobench::kQ6, rng);

    PlanCache cache;
    auto attrs = data->catalog.allAttrs();
    Database old_db(*data, layout::Layout::fixedSize(attrs, 12),
                    "fixedSize");
    auto stale = cache.bind(old_db, q);
    EXPECT_EQ(stale->epoch, old_db.epoch());
    EXPECT_EQ(cache.stats().misses, 1u);

    // A swap installs a new Database => new epoch: the entry is
    // evicted and rebound on its next lookup.
    Database new_db(*data, layout::Layout::fixedSize(attrs, 12),
                    "fixedSize");
    ASSERT_GT(new_db.epoch(), old_db.epoch());
    auto fresh = cache.bind(new_db, q);
    EXPECT_EQ(fresh->epoch, new_db.epoch());
    EXPECT_EQ(cache.stats().invalidations, 1u);
    EXPECT_EQ(cache.stats().misses, 2u);
    EXPECT_NE(cache.peek(new_db, q), nullptr);

    // A straggler query still running on the old snapshot binds
    // privately and must NOT clobber the newer entry.
    auto straggler = cache.bind(old_db, q);
    EXPECT_EQ(straggler->epoch, old_db.epoch());
    EXPECT_EQ(cache.bind(new_db, q)->epoch, new_db.epoch());
    EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST_F(PlanWorld, CachedExecutionBitIdenticalAcrossLayoutsAndThreads)
{
    std::vector<Query> qv = templates();
    // Reference: cold serial execution on the row layout.
    std::vector<uint64_t> ref;
    {
        Executor cold(*row);
        for (const Query &q : qv)
            ref.push_back(cold.run(q).digest());
    }

    for (Database *db : {row, column, fixed}) {
        for (size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
            PlanCache cache;
            Executor exec(*db, threads);
            exec.setMorselRows(64);
            exec.setPlanCache(&cache);
            for (size_t i = 0; i < qv.size(); ++i) {
                SCOPED_TRACE(qv[i].name + " threads=" +
                             std::to_string(threads));
                uint64_t first = exec.run(qv[i]).digest();
                uint64_t cached = exec.run(qv[i]).digest();
                EXPECT_EQ(first, ref[i]);
                EXPECT_EQ(cached, ref[i]);
            }
            EXPECT_EQ(cache.stats().hits, qv.size());
            EXPECT_EQ(cache.stats().misses, qv.size());
        }
    }
}

TEST_F(PlanWorld, CachedExecutionLeavesSimCountersUnchanged)
{
    // The simulated access sequence (Figs. 6-7 counters) must be
    // byte-for-byte identical whether the plan was cold-bound or
    // served from the cache.
    for (const Query &q : templates()) {
        SCOPED_TRACE(q.name);
        perf::MemoryHierarchy cold_mh;
        Executor cold(*fixed);
        cold.run(q, cold_mh);

        PlanCache cache;
        Executor cached(*fixed);
        cached.setPlanCache(&cache);
        perf::MemoryHierarchy warm_up;
        cached.run(q, warm_up); // cold bind, populates the cache
        perf::MemoryHierarchy cached_mh;
        cached.run(q, cached_mh); // cache hit
        ASSERT_GE(cache.stats().hits, 1u);

        perf::PerfCounters a = cold_mh.counters();
        perf::PerfCounters b = cached_mh.counters();
        EXPECT_EQ(a.accesses, b.accesses);
        EXPECT_EQ(a.l1Misses, b.l1Misses);
        EXPECT_EQ(a.l2Misses, b.l2Misses);
        EXPECT_EQ(a.l3Misses, b.l3Misses);
        EXPECT_EQ(a.tlbMisses, b.tlbMisses);
    }
}

TEST_F(PlanWorld, PreboundExecuteRejectsForeignPlans)
{
    Rng rng(6);
    Query q = qs->instantiate(nobench::kQ1, rng);
    PhysicalPlan plan = bindPlan(*row, q);
    Executor exec(*fixed);
    EXPECT_DEATH(exec.execute(plan, q), "different database");
}

// ---------------------------------------------------------------------
// Adaptive swaps.
// ---------------------------------------------------------------------

TEST(PlanAdaptive, SwapInvalidatesPlansAndRetainsKnobs)
{
    nobench::Config cfg;
    cfg.numDocs = 800;
    cfg.seed = 99;
    DataSet data = nobench::generateDataSet(cfg);
    nobench::QuerySet qs(data, cfg);
    Rng wrng(1);
    auto initial =
        nobench::representatives(qs, nobench::Mix::uniform(), wrng);

    adaptive::Params prm;
    prm.background = false;
    prm.window = 40;
    prm.changeThreshold = 0.4;
    prm.threads = 2;
    prm.morselRows = 64;
    adaptive::AdaptiveEngine eng(data, initial, prm);
    EXPECT_EQ(eng.threads(), 2u);
    EXPECT_EQ(eng.morselRows(), 64u);

    Rng rng(7);
    // Steady phase: templates repeat, so the cache serves hits.
    for (int i = 0; i < 80; ++i)
        eng.execute(qs.instantiate(i % nobench::kNumTemplates, rng));
    EXPECT_EQ(eng.adaptation().repartitions, 0u);
    EXPECT_GT(eng.planCache().stats().hits, 0u);

    uint64_t epoch_before = eng.snapshot()->epoch();
#ifndef DVP_OBS_DISABLED
    uint64_t morsels_before =
        obs::Registry::global().counter("dvp_morsels_total").value();
#endif

    // Shifted phase: the synchronous repartition swaps the database.
    for (int i = 0; i < 120; ++i)
        eng.execute(
            qs.instantiateShifted(i % nobench::kNumTemplates, rng));
    ASSERT_GE(eng.adaptation().repartitions, 1u);
    EXPECT_GT(eng.snapshot()->epoch(), epoch_before);

    // Every steady-phase plan went stale at the swap; re-executions
    // evicted them (lazily, template by template).
    EXPECT_GT(eng.planCache().stats().invalidations, 0u);

    // The execution knobs survive the swap: still 2 worker lanes and
    // the configured morsel size, i.e. post-swap queries keep running
    // the parallel path.
    EXPECT_EQ(eng.threads(), 2u);
    EXPECT_EQ(eng.morselRows(), 64u);
#ifndef DVP_OBS_DISABLED
    EXPECT_GT(obs::Registry::global()
                  .counter("dvp_morsels_total")
                  .value(),
              morsels_before);
#endif

    // And post-swap cached results are still correct.
    Query probe = qs.instantiateShifted(nobench::kQ6, rng);
    ResultSet first = eng.execute(probe);
    ResultSet cached = eng.execute(probe);
    Database ref_db(data,
                    layout::Layout::rowBased(data.catalog.allAttrs()),
                    "row");
    Executor ref(ref_db);
    EXPECT_TRUE(first.equals(ref.run(probe)));
    EXPECT_EQ(cached.digest(), first.digest());
}

// ---------------------------------------------------------------------
// EXPLAIN provenance + exported counters.
// ---------------------------------------------------------------------

TEST_F(PlanWorld, ExplainReportsCacheProvenance)
{
    Rng rng(8);
    Query q = qs->instantiate(nobench::kQ6, rng);

    EXPECT_NE(sql::explain(*fixed, q).find("plan cache: none"),
              std::string::npos);

    PlanCache cache;
    EXPECT_NE(sql::explain(*fixed, q, &cache).find("plan cache: MISS"),
              std::string::npos);
    // The probe itself must not perturb the cache.
    EXPECT_EQ(cache.stats().misses, 0u);
    EXPECT_EQ(cache.size(), 0u);

    Executor exec(*fixed);
    exec.setPlanCache(&cache);
    exec.run(q);
    std::string hit = sql::explain(*fixed, q, &cache);
    EXPECT_NE(hit.find("plan cache: HIT"), std::string::npos);
    EXPECT_NE(hit.find("FilterScan"), std::string::npos);
}

#ifndef DVP_OBS_DISABLED
TEST_F(PlanWorld, PlanCacheCountersAreExported)
{
    // Touch all three paths so the counters exist...
    PlanCache cache;
    Rng rng(9);
    Query q = qs->instantiate(nobench::kQ3, rng);
    auto attrs = data->catalog.allAttrs();
    Database a(*data, layout::Layout::rowBased(attrs), "row");
    cache.bind(a, q); // miss
    cache.bind(a, q); // hit
    Database b(*data, layout::Layout::rowBased(attrs), "row");
    cache.bind(b, q); // invalidation + rebind

    // ...then check the Prometheus exposition carries them.
    std::string text = obs::exportPrometheus(obs::Registry::global());
    EXPECT_NE(text.find("dvp_plan_cache_hits_total"),
              std::string::npos);
    EXPECT_NE(text.find("dvp_plan_cache_misses_total"),
              std::string::npos);
    EXPECT_NE(text.find("dvp_plan_cache_invalidations_total"),
              std::string::npos);
    EXPECT_NE(text.find("dvp_plan_binds_total"), std::string::npos);
}
#endif

} // namespace
} // namespace dvp::engine
