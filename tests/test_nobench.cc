/**
 * @file
 * Unit tests for src/nobench: generator statistics, catalog shape,
 * query instantiation, workload sampling.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "json/parser.hh"
#include "json/writer.hh"
#include "nobench/generator.hh"
#include "nobench/queries.hh"
#include "nobench/workload.hh"

namespace dvp::nobench
{
namespace
{

Config
smallConfig()
{
    Config cfg;
    cfg.numDocs = 2000;
    cfg.seed = 1234;
    return cfg;
}

TEST(Generator, CatalogHas1019Attributes)
{
    storage::Catalog c;
    registerCatalog(c);
    EXPECT_EQ(c.attrCount(), 1019u);
    EXPECT_NE(c.find("str1"), storage::kNoAttr);
    EXPECT_NE(c.find("nested_obj.str"), storage::kNoAttr);
    EXPECT_NE(c.find("nested_arr[8]"), storage::kNoAttr);
    EXPECT_NE(c.find("sparse_000"), storage::kNoAttr);
    EXPECT_NE(c.find("sparse_999"), storage::kNoAttr);
    EXPECT_EQ(c.find("sparse_1000"), storage::kNoAttr);
}

TEST(Generator, DocShape)
{
    Config cfg = smallConfig();
    Rng rng(1);
    json::JsonValue doc = generateDoc(cfg, rng, 17);
    EXPECT_EQ(doc.find("id")->asInt(), 17);
    EXPECT_EQ(doc.find("str1")->asString(), "str1_17");
    EXPECT_TRUE(doc.find("num")->isInt());
    EXPECT_TRUE(doc.find("bool")->isBool());
    EXPECT_EQ(doc.find("thousandth")->asInt(),
              doc.find("num")->asInt() % 1000);
    const json::JsonValue *nested = doc.find("nested_obj");
    ASSERT_NE(nested, nullptr);
    EXPECT_TRUE(nested->find("str")->isString());
    EXPECT_TRUE(nested->find("num")->isInt());
    ASSERT_NE(doc.find("nested_arr"), nullptr);
    EXPECT_LE(doc.find("nested_arr")->size(), 8u);
}

TEST(Generator, ExactlyOneSparseGroupPerDoc)
{
    Config cfg = smallConfig();
    Rng rng(2);
    for (int i = 0; i < 50; ++i) {
        json::JsonValue doc = generateDoc(cfg, rng, i);
        std::set<int> groups;
        int sparse = 0;
        for (const auto &[key, value] : doc.asObject()) {
            if (key.rfind("sparse_", 0) == 0) {
                ++sparse;
                groups.insert(std::stoi(key.substr(7)) / 10);
            }
        }
        EXPECT_EQ(sparse, 10);
        EXPECT_EQ(groups.size(), 1u);
    }
}

TEST(Generator, FiveGroupsForFivePercentSparseness)
{
    Config cfg = smallConfig();
    cfg.groupsPerDoc = 5;
    Rng rng(3);
    json::JsonValue doc = generateDoc(cfg, rng, 0);
    std::set<int> groups;
    for (const auto &[key, value] : doc.asObject())
        if (key.rfind("sparse_", 0) == 0)
            groups.insert(std::stoi(key.substr(7)) / 10);
    EXPECT_EQ(groups.size(), 5u);
}

TEST(Generator, Deterministic)
{
    Config cfg = smallConfig();
    cfg.numDocs = 50;
    engine::DataSet a = generateDataSet(cfg);
    engine::DataSet b = generateDataSet(cfg);
    ASSERT_EQ(a.docs.size(), b.docs.size());
    for (size_t i = 0; i < a.docs.size(); ++i)
        EXPECT_EQ(a.docs[i].attrs, b.docs[i].attrs);
}

TEST(Generator, SparsenessNearOnePercent)
{
    Config cfg = smallConfig();
    engine::DataSet data = generateDataSet(cfg);
    const auto &cat = data.catalog;

    // Dense attributes are always present.
    EXPECT_DOUBLE_EQ(cat.sparseness(cat.find("num")), 1.0);
    EXPECT_DOUBLE_EQ(cat.sparseness(cat.find("nested_obj.str")), 1.0);

    // Average sparse-attribute presence ~ 1%.
    double total = 0;
    for (int i = 0; i < 1000; ++i) {
        char name[16];
        std::snprintf(name, sizeof(name), "sparse_%03d", i);
        total += cat.sparseness(cat.find(name));
    }
    EXPECT_NEAR(total / 1000.0, 0.01, 0.003);

    // Array slots: presence of nested_arr[i] falls with i (length
    // uniform in [0,8] => P(len > i) = (8 - i) / 9).
    double prev = 1.0;
    for (int i = 0; i <= 8; ++i) {
        double p = cat.sparseness(
            cat.find("nested_arr[" + std::to_string(i) + "]"));
        EXPECT_LE(p, prev + 0.05);
        EXPECT_NEAR(p, (8.0 - i) / 9.0, 0.06);
        prev = p;
    }
}

TEST(Generator, DocsPerAttributeCount)
{
    Config cfg = smallConfig();
    cfg.numDocs = 200;
    engine::DataSet data = generateDataSet(cfg);
    for (const auto &doc : data.docs) {
        // 10 dense scalars + arr(0..8) + 10 sparse = 20..28 present.
        EXPECT_GE(doc.attrs.size(), 20u);
        EXPECT_LE(doc.attrs.size(), 28u);
    }
}

TEST(Generator, AppendDocsContinuesOids)
{
    Config cfg = smallConfig();
    cfg.numDocs = 10;
    engine::DataSet data = generateDataSet(cfg);
    Rng rng(99);
    appendDocs(cfg, data, rng, 5);
    ASSERT_EQ(data.docs.size(), 15u);
    EXPECT_EQ(data.docs[14].oid, 14);
}

TEST(Generator, JsonLinesRoundTrip)
{
    Config cfg = smallConfig();
    std::string lines = generateJsonLines(cfg, 5);
    std::string err;
    auto docs = json::parseLines(lines, &err);
    ASSERT_EQ(docs.size(), 5u) << err;
    EXPECT_EQ(docs[3].find("id")->asInt(), 3);
}

class QueriesTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        Config cfg;
        cfg.numDocs = 2000;
        cfg.seed = 7;
        data = new engine::DataSet(generateDataSet(cfg));
        qs = new QuerySet(*data, cfg);
    }
    static void
    TearDownTestSuite()
    {
        delete qs;
        delete data;
        qs = nullptr;
        data = nullptr;
    }
    static engine::DataSet *data;
    static QuerySet *qs;
};

engine::DataSet *QueriesTest::data = nullptr;
QuerySet *QueriesTest::qs = nullptr;

TEST_F(QueriesTest, TemplatesHaveExpectedKinds)
{
    Rng rng(1);
    using engine::QueryKind;
    EXPECT_EQ(qs->instantiate(kQ1, rng).kind, QueryKind::Project);
    EXPECT_EQ(qs->instantiate(kQ4, rng).kind, QueryKind::Project);
    EXPECT_EQ(qs->instantiate(kQ5, rng).kind, QueryKind::Select);
    EXPECT_EQ(qs->instantiate(kQ9, rng).kind, QueryKind::Select);
    EXPECT_EQ(qs->instantiate(kQ10, rng).kind, QueryKind::Aggregate);
    EXPECT_EQ(qs->instantiate(kQ11, rng).kind, QueryKind::Join);
}

TEST_F(QueriesTest, SelectStarFlags)
{
    Rng rng(2);
    EXPECT_FALSE(qs->instantiate(kQ1, rng).selectAll);
    EXPECT_TRUE(qs->instantiate(kQ5, rng).selectAll);
    EXPECT_TRUE(qs->instantiate(kQ6, rng).selectAll);
    EXPECT_FALSE(qs->instantiate(kQ8, rng).selectAll);
    EXPECT_TRUE(qs->instantiate(kQ9, rng).selectAll);
}

TEST_F(QueriesTest, Q8UsesAnyEqOverArraySlots)
{
    Rng rng(3);
    engine::Query q8 = qs->instantiate(kQ8, rng);
    EXPECT_EQ(q8.cond.op, engine::CondOp::AnyEq);
    EXPECT_EQ(q8.cond.anyAttrs.size(), 9u);
    EXPECT_TRUE(storage::isStringSlot(q8.cond.lo));
}

TEST_F(QueriesTest, Q6BetweenBoundsAreFresh)
{
    Rng rng(4);
    engine::Query a = qs->instantiate(kQ6, rng);
    engine::Query b = qs->instantiate(kQ6, rng);
    EXPECT_EQ(a.cond.op, engine::CondOp::Between);
    EXPECT_EQ(a.cond.hi - a.cond.lo + 1, 1000);
    EXPECT_NE(a.cond.lo, b.cond.lo); // fresh instantiation
}

TEST_F(QueriesTest, Q5TargetsExistingString)
{
    Rng rng(5);
    engine::Query q5 = qs->instantiate(kQ5, rng);
    ASSERT_TRUE(storage::isStringSlot(q5.cond.lo));
    storage::StringId id = storage::decodeString(q5.cond.lo);
    EXPECT_EQ(data->dict.text(id).rfind("str1_", 0), 0u);
}

TEST_F(QueriesTest, ConditionAndSelectionParts)
{
    Rng rng(6);
    engine::Query q1 = qs->instantiate(kQ1, rng);
    EXPECT_TRUE(q1.conditionPart().empty());
    EXPECT_EQ(q1.selectionPart(data->catalog).size(), 2u);

    engine::Query q6 = qs->instantiate(kQ6, rng);
    EXPECT_EQ(q6.conditionPart().size(), 1u);
    EXPECT_EQ(q6.selectionPart(data->catalog).size(),
              data->catalog.attrCount());

    engine::Query q11 = qs->instantiate(kQ11, rng);
    // num (condition) + both join attrs.
    EXPECT_EQ(q11.conditionPart().size(), 3u);
}

TEST_F(QueriesTest, ShiftedVariantsChangeAccessedAttrs)
{
    Rng rng(7);
    engine::Query base = qs->instantiate(kQ3, rng);
    engine::Query shifted = qs->instantiateShifted(kQ3, rng);
    EXPECT_NE(base.projected, shifted.projected);
    // Q5 is not shifted.
    EXPECT_EQ(qs->instantiate(kQ5, rng).cond.attr,
              qs->instantiateShifted(kQ5, rng).cond.attr);
}

TEST_F(QueriesTest, InsertQueryBorrowsPayload)
{
    std::vector<storage::Document> docs(3);
    engine::Query q12 = qs->insertQuery(&docs);
    EXPECT_EQ(q12.kind, engine::QueryKind::Insert);
    EXPECT_EQ(q12.insertDocs, &docs);
}

TEST_F(QueriesTest, MixUniformWeightsEqual)
{
    Mix m = Mix::uniform();
    ASSERT_EQ(m.weights.size(), static_cast<size_t>(kNumTemplates));
    for (double w : m.weights)
        EXPECT_DOUBLE_EQ(w, 1.0);
}

TEST_F(QueriesTest, MakeLogSamplesAllTemplates)
{
    Rng rng(8);
    auto log = makeLog(*qs, Mix::uniform(), rng, 1000);
    ASSERT_EQ(log.size(), 1000u);
    std::map<std::string, int> counts;
    for (const auto &q : log)
        ++counts[q.name];
    EXPECT_EQ(counts.size(), static_cast<size_t>(kNumTemplates));
    for (const auto &[name, count] : counts) {
        EXPECT_GT(count, 45) << name; // ~91 expected
        EXPECT_LT(count, 160) << name;
    }
    for (const auto &q : log)
        EXPECT_NEAR(q.frequency, 1.0 / static_cast<double>(kNumTemplates), 1e-12);
}

TEST_F(QueriesTest, SkewedMixFavoursEarlyTemplates)
{
    Rng rng(9);
    auto log = makeLog(*qs, Mix::skewed(1.0), rng, 2000);
    int q1 = 0, q11 = 0;
    for (const auto &q : log) {
        q1 += q.name == "Q1";
        q11 += q.name == "Q11";
    }
    EXPECT_GT(q1, 3 * q11);
}

TEST_F(QueriesTest, RepresentativesOnePerTemplate)
{
    Rng rng(10);
    auto reps = representatives(*qs, Mix::uniform(), rng);
    ASSERT_EQ(reps.size(), static_cast<size_t>(kNumTemplates));
    std::set<std::string> names;
    for (const auto &q : reps)
        names.insert(q.name);
    EXPECT_EQ(names.size(), reps.size());
    double total = 0;
    for (const auto &q : reps)
        total += q.frequency;
    EXPECT_NEAR(total, 1.0, 1e-9);
}

} // namespace
} // namespace dvp::nobench
