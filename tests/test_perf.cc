/**
 * @file
 * Unit tests for src/perf: cache model, TLB model, hierarchy wiring.
 */

#include <gtest/gtest.h>

#include "perf/cache.hh"
#include "perf/memory_hierarchy.hh"
#include "perf/tlb.hh"
#include "util/arena.hh"
#include "util/pagemap.hh"
#include "util/random.hh"

namespace dvp::perf
{
namespace
{

CacheConfig
tiny(size_t capacity, size_t ways)
{
    return CacheConfig{"tiny", capacity, ways, 64};
}

TEST(Cache, ColdMissThenHit)
{
    Cache c(tiny(1024, 2));
    EXPECT_FALSE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1004)); // same line
    EXPECT_EQ(c.accesses(), 3u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, LruEviction)
{
    // 2-way, 8 sets (1024/2/64); three lines mapping to set 0.
    Cache c(tiny(1024, 2));
    uint64_t set_stride = 8 * 64;
    c.access(0 * set_stride);
    c.access(1 * set_stride);
    c.access(0 * set_stride);      // refresh line 0
    c.access(2 * set_stride);      // evicts line 1 (LRU)
    EXPECT_TRUE(c.access(0 * set_stride));
    EXPECT_FALSE(c.access(1 * set_stride)); // was evicted
}

TEST(Cache, SetIsolation)
{
    Cache c(tiny(1024, 1));
    // Different sets never evict each other.
    c.access(0 * 64);
    c.access(1 * 64);
    c.access(2 * 64);
    EXPECT_TRUE(c.access(0 * 64));
    EXPECT_TRUE(c.access(1 * 64));
}

TEST(Cache, WorkingSetWithinCapacityHasNoRemisses)
{
    Cache c(tiny(32 * 1024, 8));
    for (int round = 0; round < 3; ++round)
        for (uint64_t line = 0; line < 256; ++line)
            c.access(line * 64);
    // 256 lines = 16 KB working set in a 32 KB cache: only cold misses.
    EXPECT_EQ(c.misses(), 256u);
}

TEST(Cache, ThrashingBeyondCapacity)
{
    Cache c(tiny(1024, 2)); // 16 lines capacity
    for (int round = 0; round < 4; ++round)
        for (uint64_t line = 0; line < 64; ++line)
            c.access(line * 64);
    // Sequential sweep 4x larger than capacity with LRU: every access
    // misses.
    EXPECT_EQ(c.misses(), c.accesses());
}

TEST(Cache, MissesMonotoneInCapacity)
{
    // Property: for the same trace, a larger cache (same ways) never
    // misses more under LRU (inclusion property holds per set when the
    // set count multiplies evenly... verified empirically here on
    // random traces).
    Rng rng(5);
    std::vector<uint64_t> trace;
    for (int i = 0; i < 20000; ++i)
        trace.push_back(rng.below(1 << 16) * 8);

    uint64_t prev_misses = UINT64_MAX;
    for (size_t cap : {4096, 8192, 16384, 32768}) {
        Cache c(tiny(cap, 8));
        for (uint64_t a : trace)
            c.access(a);
        EXPECT_LE(c.misses(), prev_misses) << "capacity " << cap;
        prev_misses = c.misses();
    }
}

TEST(Cache, MissesMonotoneInAssociativityAtFixedSets)
{
    // LRU inclusion property: with the set count held fixed, adding
    // ways can only reduce misses.  (Holding capacity fixed instead
    // changes the set mapping and the property does not hold.)
    Rng rng(6);
    std::vector<uint64_t> trace;
    for (int i = 0; i < 20000; ++i)
        trace.push_back(rng.below(1 << 14) * 8);

    uint64_t prev = UINT64_MAX;
    for (size_t ways : {1, 2, 4, 8}) {
        Cache c(tiny(128 * 64 * ways, ways)); // 128 sets each
        ASSERT_EQ(c.config().sets(), 128u);
        for (uint64_t a : trace)
            c.access(a);
        EXPECT_LE(c.misses(), prev) << ways << " ways";
        prev = c.misses();
    }
}

TEST(Cache, NonPowerOfTwoSetCount)
{
    // The paper's 20 MB LLC: 40960 sets.  Must construct and behave.
    Cache llc(CacheConfig{"LLC", 20 * 1024 * 1024, 8, 64});
    EXPECT_EQ(llc.config().sets(), 40960u);
    EXPECT_FALSE(llc.access(0));
    EXPECT_TRUE(llc.access(0));
}

TEST(Cache, ResetClearsContentsAndCounters)
{
    Cache c(tiny(1024, 2));
    c.access(0x40);
    c.reset();
    EXPECT_EQ(c.accesses(), 0u);
    EXPECT_FALSE(c.access(0x40)); // cold again
}

TEST(Cache, ResetCountersKeepsContents)
{
    Cache c(tiny(1024, 2));
    c.access(0x40);
    c.resetCounters();
    EXPECT_TRUE(c.access(0x40)); // still cached
    EXPECT_EQ(c.accesses(), 1u);
}

TEST(Tlb, ColdMissThenHit)
{
    Tlb t(TlbConfig{64, 4, 4096, false});
    EXPECT_FALSE(t.access(0x10000));
    EXPECT_TRUE(t.access(0x10008));
    EXPECT_EQ(t.misses(), 1u);
}

TEST(Tlb, SequentialScanWithPrefetchHasOneMiss)
{
    Tlb t(TlbConfig{64, 4, 4096, true});
    // Touch 64 consecutive pages line by line: once the sequential
    // stream is visible the prefetcher pre-installs each next page.
    for (uint64_t addr = 0; addr < 64 * 4096; addr += 64)
        t.access(addr);
    EXPECT_LE(t.misses(), 2u);
}

TEST(Tlb, ConstantStrideScanIsPrefetched)
{
    // A single-column scan over 8 KB records touches every other page
    // with a constant stride; the stream prefetcher must catch it
    // (this is the row layout's TLB advantage in the paper's Fig. 7).
    Tlb t(TlbConfig{64, 4, 4096, true});
    for (uint64_t rec = 0; rec < 512; ++rec)
        t.access(rec * 8192);
    EXPECT_LE(t.misses(), 3u);
}

TEST(Tlb, HugeStridesAreNotStreams)
{
    Tlb t(TlbConfig{64, 4, 4096, true});
    // Stride of 100 pages exceeds maxPrefetchStride: all misses.
    for (uint64_t rec = 1; rec <= 200; ++rec)
        t.access(rec * 100 * 4096);
    EXPECT_EQ(t.misses(), 200u);
}

TEST(Tlb, SequentialScanWithoutPrefetchMissesPerPage)
{
    Tlb t(TlbConfig{64, 4, 4096, false});
    for (uint64_t addr = 0; addr < 64 * 4096; addr += 64)
        t.access(addr);
    EXPECT_EQ(t.misses(), 64u);
}

TEST(Tlb, RandomHopsDefeatPrefetch)
{
    Tlb t(TlbConfig{64, 4, 4096, true});
    Rng rng(8);
    for (int i = 0; i < 4096; ++i)
        t.access(rng.below(1 << 20) * 4096);
    // Far more pages than entries, no streams: miss rate near 1.
    EXPECT_GT(t.misses(), 3800u);
}

TEST(Tlb, CapacityEviction)
{
    TlbConfig cfg{4, 4, 4096, false};
    cfg.stlbEntries = 0; // single level: 4 entries total
    Tlb t(cfg);
    for (uint64_t p = 0; p < 5; ++p)
        t.access(p * 4096);
    EXPECT_FALSE(t.access(0)); // evicted by page 4
}

TEST(Tlb, StlbCatchesL1Evictions)
{
    // 128 pages overflow the 64-entry L1 DTLB but fit in the 512-entry
    // STLB: the second sweep misses neither level.
    TlbConfig cfg{64, 4, 4096, false};
    Tlb t(cfg);
    for (int round = 0; round < 2; ++round)
        for (uint64_t p = 0; p < 128; ++p)
            t.access(p * 4096);
    EXPECT_EQ(t.misses(), 128u); // cold only
}

TEST(Tlb, StlbOverflowMissesEveryTime)
{
    // 1024 pages overflow both levels: cyclic sweeps always miss.
    TlbConfig cfg{64, 4, 4096, false};
    Tlb t(cfg);
    for (int round = 0; round < 2; ++round)
        for (uint64_t p = 0; p < 1024; ++p)
            t.access(p * 4096);
    EXPECT_EQ(t.misses(), 2048u);
}

TEST(Tlb, HugePagesUseDedicatedArray)
{
    // A registered huge range: a 4 MB sweep touches just two 2 MB
    // pages -> 2 misses, while the same sweep unregistered costs a
    // 4 KB page walk per page.
    PageMap::instance().add(0x80000000, 4 * 1024 * 1024);
    TlbConfig cfg{64, 4, 4096, false};
    Tlb huge(cfg);
    for (uint64_t a = 0; a < 4 * 1024 * 1024; a += 4096)
        huge.access(0x80000000 + a);
    EXPECT_EQ(huge.misses(), 2u);
    PageMap::instance().remove(0x80000000);

    Tlb small(cfg);
    for (uint64_t a = 0; a < 4 * 1024 * 1024; a += 4096)
        small.access(0x80000000 + a);
    EXPECT_EQ(small.misses(), 1024u);
}

TEST(Tlb, HugeTlbCapacityCycles)
{
    // 128 huge pages > 32 entries: a cyclic sweep misses every time.
    PageMap::instance().add(0x100000000ULL, 256ULL * 1024 * 1024);
    TlbConfig cfg{64, 4, 4096, false};
    Tlb t(cfg);
    for (int round = 0; round < 2; ++round)
        for (uint64_t p = 0; p < 128; ++p)
            t.access(0x100000000ULL + p * 2 * 1024 * 1024);
    EXPECT_EQ(t.misses(), 256u);
    PageMap::instance().remove(0x100000000ULL);
}

TEST(Hierarchy, TouchWalksLevels)
{
    MemoryHierarchy mh;
    mh.touch(reinterpret_cast<const void *>(0x100000), 8);
    PerfCounters c = mh.counters();
    EXPECT_EQ(c.accesses, 1u);
    EXPECT_EQ(c.l1Misses, 1u);
    EXPECT_EQ(c.l2Misses, 1u);
    EXPECT_EQ(c.l3Misses, 1u);
    EXPECT_EQ(c.tlbMisses, 1u);

    mh.touch(reinterpret_cast<const void *>(0x100000), 8);
    c = mh.counters();
    EXPECT_EQ(c.l1Misses, 1u); // second touch hits L1
    EXPECT_EQ(c.accesses, 2u);
}

TEST(Hierarchy, TouchSpanningLines)
{
    MemoryHierarchy mh;
    // 16 bytes straddling a line boundary: two line accesses.
    mh.touch(reinterpret_cast<const void *>(0x1038), 16);
    EXPECT_EQ(mh.counters().accesses, 2u);
    // Zero-length touch still inspects its line (cheap, deliberate).
    mh.touch(reinterpret_cast<const void *>(0x2000), 0);
    EXPECT_EQ(mh.counters().accesses, 3u);
}

TEST(Hierarchy, L2HitStopsDescent)
{
    MemoryHierarchy mh;
    // Fill enough lines to evict from tiny L1 (32 KB / 64 = 512 lines)
    // but stay within L2.
    for (uint64_t line = 0; line < 2048; ++line)
        mh.touch(reinterpret_cast<const void *>(line * 64), 8);
    PerfCounters warm = mh.counters();
    // Re-touch line 0: out of L1 (sequential sweep of 4x capacity),
    // but resident in L2 (2048 lines = 128 KB < 256 KB).
    mh.touch(reinterpret_cast<const void *>(uint64_t{0}), 8);
    PerfCounters after = mh.counters();
    EXPECT_EQ(after.l1Misses, warm.l1Misses + 1);
    EXPECT_EQ(after.l3Misses, warm.l3Misses);
}

TEST(Hierarchy, SequentialBytesPerMiss)
{
    // Property: sequentially scanning B bytes costs ceil(B/64) L1
    // misses and (with prefetch) ~1 TLB miss.
    MemoryHierarchy mh;
    constexpr size_t kBytes = 1 << 20;
    for (uint64_t a = 0; a < kBytes; a += 8)
        mh.touch(reinterpret_cast<const void *>(a), 8);
    PerfCounters c = mh.counters();
    EXPECT_EQ(c.l1Misses, kBytes / 64);
    EXPECT_LE(c.tlbMisses, 2u);
}

TEST(Hierarchy, CounterArithmetic)
{
    PerfCounters a{10, 5, 4, 3, 2};
    PerfCounters b{4, 2, 2, 1, 1};
    PerfCounters d = a - b;
    EXPECT_EQ(d.accesses, 6u);
    EXPECT_EQ(d.l1Misses, 3u);
    EXPECT_EQ(d.l3Misses, 2u);
    d += b;
    EXPECT_EQ(d.accesses, a.accesses);
    EXPECT_EQ(d.tlbMisses, a.tlbMisses);
}

} // namespace
} // namespace dvp::perf
