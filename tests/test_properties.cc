/**
 * @file
 * Property suites with brute-force oracles:
 *
 *  - the §IV padding model's analytic line counts vs direct simulation
 *    of record placements;
 *  - the set-associative cache vs a naive reference LRU;
 *  - random vertical layouts (not just row/column/fixed) must answer
 *    every NoBench query identically;
 *  - random non-NoBench JSON documents through all engines (shapes the
 *    NoBench generator never produces).
 */

#include <gtest/gtest.h>

#include <list>
#include <map>
#include <set>

#include "argo/argo_executor.hh"
#include "argo/argo_store.hh"
#include "engine/database.hh"
#include "engine/executor.hh"
#include "json/value.hh"
#include "nobench/generator.hh"
#include "nobench/queries.hh"
#include "perf/cache.hh"
#include "storage/padding.hh"
#include "util/random.hh"

namespace dvp
{
namespace
{

// ---------------------------------------------------------------------
// Padding model vs brute force.
// ---------------------------------------------------------------------

class PaddingOracle : public ::testing::TestWithParam<size_t>
{
};

TEST_P(PaddingOracle, ProjectionMissesMatchSimulation)
{
    size_t stride = GetParam();
    // Brute force: lay out 4096 records, count distinct lines touched
    // by an 8-byte attribute at every slot offset.
    const size_t records = 4096;
    size_t slots = stride / 8;
    for (size_t slot = 0; slot < slots; ++slot) {
        std::set<size_t> lines;
        for (size_t r = 0; r < records; ++r) {
            size_t lo = r * stride + slot * 8;
            lines.insert(lo / 64);
            lines.insert((lo + 7) / 64);
        }
        double expected = static_cast<double>(lines.size()) / records;
        double model =
            storage::projectionMissesPerRecord(stride, slot * 8, 8);
        EXPECT_NEAR(model, expected, 1e-9)
            << "stride " << stride << " slot " << slot;
    }
}

TEST_P(PaddingOracle, RecordSpanMatchesSimulation)
{
    size_t stride = GetParam();
    const size_t records = 4096;
    size_t total = 0;
    for (size_t r = 0; r < records; ++r) {
        size_t first = (r * stride) / 64;
        size_t last = (r * stride + stride - 1) / 64;
        total += last - first + 1;
    }
    double expected = static_cast<double>(total) / records;
    EXPECT_NEAR(storage::avgRecordSpanLines(stride, stride), expected,
                1e-9);
}

INSTANTIATE_TEST_SUITE_P(StrideSweep, PaddingOracle,
                         ::testing::Values(8, 16, 24, 40, 64, 72, 88,
                                           104, 128, 136, 520, 1024),
                         [](const auto &info) {
                             return "stride" +
                                    std::to_string(info.param);
                         });

// ---------------------------------------------------------------------
// Cache vs reference LRU.
// ---------------------------------------------------------------------

/** Straight-line reference: per-set std::list, MRU at front. */
class ReferenceCache
{
  public:
    ReferenceCache(size_t sets, size_t ways) : sets_(sets), ways(ways),
                                               lists(sets)
    {
    }

    bool
    access(uint64_t addr)
    {
        uint64_t line = addr / 64;
        auto &lru = lists[line % sets_];
        for (auto it = lru.begin(); it != lru.end(); ++it) {
            if (*it == line) {
                lru.erase(it);
                lru.push_front(line);
                return true;
            }
        }
        lru.push_front(line);
        if (lru.size() > ways)
            lru.pop_back();
        return false;
    }

  private:
    size_t sets_, ways;
    std::vector<std::list<uint64_t>> lists;
};

class CacheOracle
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>>
{
};

TEST_P(CacheOracle, MatchesReferenceLruHitForHit)
{
    auto [sets, ways] = GetParam();
    perf::Cache cache(
        perf::CacheConfig{"t", sets * ways * 64, ways, 64});
    ASSERT_EQ(cache.config().sets(), sets);
    ReferenceCache ref(sets, ways);

    Rng rng(sets * 31 + ways);
    for (int i = 0; i < 30000; ++i) {
        // Mix of hot set, sequential runs, and random noise.
        uint64_t addr;
        switch (rng.below(3)) {
          case 0:
            addr = rng.below(64) * 64; // hot lines
            break;
          case 1:
            addr = (i % 1024) * 64; // sweep
            break;
          default:
            addr = rng.below(1 << 16) * 8;
            break;
        }
        ASSERT_EQ(cache.access(addr), ref.access(addr))
            << "access " << i << " addr " << addr;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheOracle,
    ::testing::Values(std::make_tuple(1, 1), std::make_tuple(1, 8),
                      std::make_tuple(16, 2), std::make_tuple(64, 4),
                      std::make_tuple(128, 8)),
    [](const auto &info) {
        return "sets" + std::to_string(std::get<0>(info.param)) +
               "ways" + std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------
// Random-layout fuzz: any valid vertical partitioning answers alike.
// ---------------------------------------------------------------------

struct FuzzWorld
{
    nobench::Config cfg;
    engine::DataSet data;
    std::vector<engine::Query> queries;
    std::vector<engine::ResultSet> reference;

    FuzzWorld()
    {
        cfg.numDocs = 500;
        cfg.seed = 808;
        data = nobench::generateDataSet(cfg);
        nobench::QuerySet qs(data, cfg);
        Rng rng(4242);
        for (int t = 0; t < nobench::kNumTemplates; ++t)
            queries.push_back(qs.instantiate(t, rng));
        engine::Database row(
            data, layout::Layout::rowBased(data.catalog.allAttrs()),
            "row");
        engine::Executor exec(row);
        for (const auto &q : queries)
            reference.push_back(exec.run(q));
    }

    layout::Layout
    randomLayout(uint64_t seed) const
    {
        Rng rng(seed);
        std::vector<storage::AttrId> attrs = data.catalog.allAttrs();
        rng.shuffle(attrs);
        std::vector<std::vector<storage::AttrId>> parts;
        size_t i = 0;
        while (i < attrs.size()) {
            size_t k = 1 + rng.below(40); // partition sizes 1..40
            k = std::min(k, attrs.size() - i);
            parts.emplace_back(attrs.begin() + i, attrs.begin() + i + k);
            i += k;
        }
        return layout::Layout(std::move(parts));
    }
};

FuzzWorld &
fuzzWorld()
{
    static FuzzWorld w;
    return w;
}

class RandomLayoutFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(RandomLayoutFuzz, AllQueriesMatchRowReference)
{
    FuzzWorld &w = fuzzWorld();
    layout::Layout layout =
        w.randomLayout(static_cast<uint64_t>(GetParam()) * 1337 + 5);
    layout.validate();
    engine::Database db(w.data, layout, "fuzz");
    engine::Executor exec(db);
    for (size_t qi = 0; qi < w.queries.size(); ++qi) {
        engine::ResultSet rs = exec.run(w.queries[qi]);
        EXPECT_TRUE(rs.equals(w.reference[qi]))
            << w.queries[qi].name << " on layout seed " << GetParam();
        EXPECT_EQ(rs.checksum, w.reference[qi].checksum)
            << w.queries[qi].name;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLayoutFuzz,
                         ::testing::Range(0, 8));

// ---------------------------------------------------------------------
// Random non-NoBench documents through every engine.
// ---------------------------------------------------------------------

json::JsonValue
randomDoc(Rng &rng)
{
    using json::JsonValue;
    JsonValue doc = JsonValue::makeObject();
    size_t fields = 1 + rng.below(12);
    for (size_t f = 0; f < fields; ++f) {
        std::string key = "k" + std::to_string(rng.below(30));
        switch (rng.below(5)) {
          case 0:
            doc.set(key, JsonValue(rng.range(-1000, 1000)));
            break;
          case 1:
            doc.set(key, JsonValue("v" + std::to_string(rng.below(20))));
            break;
          case 2:
            doc.set(key, JsonValue(rng.chance(0.5)));
            break;
          case 3: {
            JsonValue arr = JsonValue::makeArray();
            auto n = rng.below(4);
            for (uint64_t i = 0; i < n; ++i)
                arr.push(JsonValue(
                    "a" + std::to_string(rng.below(10))));
            doc.set(key, std::move(arr));
            break;
          }
          default: {
            JsonValue obj = JsonValue::makeObject();
            obj.set("x", JsonValue(rng.range(0, 99)));
            if (rng.chance(0.5))
                obj.set("y", JsonValue("deep"));
            doc.set(key, std::move(obj));
            break;
          }
        }
    }
    return doc;
}

class RandomDocsFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(RandomDocsFuzz, AllEnginesAgreeOnRandomWorkload)
{
    Rng rng(static_cast<uint64_t>(GetParam()) * 97 + 3);
    engine::DataSet data;
    for (int d = 0; d < 300; ++d)
        data.addObject(randomDoc(rng));

    auto attrs = data.catalog.allAttrs();
    engine::Database row(data, layout::Layout::rowBased(attrs), "row");
    engine::Database col(data, layout::Layout::columnBased(attrs),
                         "col");
    argo::ArgoStore a1(data, argo::Variant::Argo1);
    argo::ArgoStore a3(data, argo::Variant::Argo3);

    // Random workload over the discovered attributes.
    for (int qi = 0; qi < 12; ++qi) {
        engine::Query q;
        q.name = "fuzz" + std::to_string(qi);
        switch (rng.below(3)) {
          case 0: { // projection of 1-3 random attrs
            q.kind = engine::QueryKind::Project;
            size_t k = 1 + rng.below(3);
            for (size_t i = 0; i < k; ++i)
                q.projected.push_back(static_cast<storage::AttrId>(
                    rng.below(attrs.size())));
            std::sort(q.projected.begin(), q.projected.end());
            q.projected.erase(std::unique(q.projected.begin(),
                                          q.projected.end()),
                              q.projected.end());
            break;
          }
          case 1: // SELECT * with numeric range
            q.kind = engine::QueryKind::Select;
            q.selectAll = true;
            q.cond.op = engine::CondOp::Between;
            q.cond.attr = static_cast<storage::AttrId>(
                rng.below(attrs.size()));
            q.cond.lo = rng.range(-1000, 0);
            q.cond.hi = q.cond.lo + rng.range(0, 1500);
            break;
          default: // equality on a (possibly string) value
            q.kind = engine::QueryKind::Select;
            q.projected = {static_cast<storage::AttrId>(
                rng.below(attrs.size()))};
            q.cond.op = engine::CondOp::Eq;
            q.cond.attr = static_cast<storage::AttrId>(
                rng.below(attrs.size()));
            if (rng.chance(0.5)) {
                q.cond.lo = rng.range(-1000, 1000);
            } else {
                storage::StringId id = data.dict.lookup(
                    "v" + std::to_string(rng.below(20)));
                q.cond.lo =
                    id == storage::Dictionary::kMissing
                        ? storage::encodeString(
                              storage::Dictionary::kMissing - 1)
                        : storage::encodeString(id);
            }
            break;
        }

        engine::Executor row_exec(row);
        engine::ResultSet ref = row_exec.run(q);
        engine::Executor col_exec(col);
        EXPECT_TRUE(col_exec.run(q).equals(ref)) << q.name;
        argo::ArgoExecutor a1_exec(a1);
        EXPECT_TRUE(a1_exec.run(q).equals(ref)) << q.name;
        argo::ArgoExecutor a3_exec(a3);
        EXPECT_TRUE(a3_exec.run(q).equals(ref)) << q.name;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDocsFuzz, ::testing::Range(0, 6));

} // namespace
} // namespace dvp
