/**
 * @file
 * Ground-truth tests: a deliberately naive reference executor computes
 * every NoBench query straight from the encoded documents (no tables,
 * no layouts, no cursors), and the real engine must match it.  This
 * breaks the symmetry of the cross-engine equality tests, which could
 * in principle all share one consistent bug.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "engine/database.hh"
#include "engine/executor.hh"
#include "nobench/generator.hh"
#include "nobench/queries.hh"

namespace dvp::engine
{
namespace
{

using storage::AttrId;
using storage::Document;
using storage::isNull;
using storage::kNullSlot;
using storage::Slot;

/** Reference semantics computed directly over documents. */
class Reference
{
  public:
    explicit Reference(const DataSet &data) : data(&data) {}

    ResultSet
    run(const Query &q) const
    {
        switch (q.kind) {
          case QueryKind::Project:
            return project(q);
          case QueryKind::Select:
            return select(q);
          case QueryKind::Aggregate:
            return aggregate(q);
          case QueryKind::Join:
            return join(q);
          default:
            ADD_FAILURE() << "reference does not model inserts";
            return {};
        }
    }

  private:
    bool
    matches(const Document &doc, const Condition &c) const
    {
        switch (c.op) {
          case CondOp::None:
            return true;
          case CondOp::Eq:
          case CondOp::Between:
            return c.matches(doc.slotOf(c.attr));
          case CondOp::AnyEq:
            for (AttrId a : c.anyAttrs)
                if (c.matches(doc.slotOf(a)))
                    return true;
            return false;
          case CondOp::IsNull: {
            // The engine answers IS NULL as presence-minus-NotNull, so
            // only documents stored somewhere (>= 1 non-null cell) can
            // match; absent-from-storage objects never surface.
            bool present = false;
            for (const auto &[a, s] : doc.attrs)
                if (!isNull(s)) {
                    present = true;
                    break;
                }
            return present && isNull(doc.slotOf(c.attr));
          }
          case CondOp::NotNull:
            return !isNull(doc.slotOf(c.attr));
        }
        return false;
    }

    std::vector<Slot>
    materialize(const Document &doc, const Query &q) const
    {
        if (q.selectAll) {
            std::vector<Slot> row(data->catalog.attrCount(), kNullSlot);
            for (const auto &[attr, slot] : doc.attrs)
                if (attr < row.size())
                    row[attr] = slot;
            return row;
        }
        std::vector<Slot> row(q.projected.size(), kNullSlot);
        for (size_t i = 0; i < q.projected.size(); ++i)
            row[i] = doc.slotOf(q.projected[i]);
        return row;
    }

    ResultSet
    project(const Query &q) const
    {
        ResultSet rs;
        for (const auto &doc : data->docs) {
            std::vector<Slot> row = materialize(doc, q);
            bool any = std::any_of(row.begin(), row.end(),
                                   [](Slot s) { return !isNull(s); });
            if (any) {
                rs.oids.push_back(doc.oid);
                rs.rows.push_back(std::move(row));
            }
        }
        return rs;
    }

    ResultSet
    select(const Query &q) const
    {
        ResultSet rs;
        for (const auto &doc : data->docs) {
            if (!matches(doc, q.cond))
                continue;
            rs.oids.push_back(doc.oid);
            rs.rows.push_back(materialize(doc, q));
        }
        return rs;
    }

    ResultSet
    aggregate(const Query &q) const
    {
        std::map<Slot, int64_t> counts;
        for (const auto &doc : data->docs)
            if (matches(doc, q.cond))
                ++counts[doc.slotOf(q.groupBy)];
        ResultSet rs;
        for (const auto &[key, count] : counts)
            rs.rows.push_back({key, count});
        return rs;
    }

    ResultSet
    join(const Query &q) const
    {
        ResultSet rs;
        for (const auto &left : data->docs) {
            if (!matches(left, q.cond))
                continue;
            Slot key = left.slotOf(q.joinLeftAttr);
            if (isNull(key))
                continue;
            for (const auto &right : data->docs)
                if (right.slotOf(q.joinRightAttr) == key)
                    rs.rows.push_back({left.oid, right.oid});
        }
        return rs;
    }

    const DataSet *data;
};

struct GtWorld
{
    nobench::Config cfg;
    DataSet data;
    std::unique_ptr<nobench::QuerySet> qs;
    std::unique_ptr<Database> db;

    GtWorld()
    {
        cfg.numDocs = 700;
        cfg.seed = 90210;
        data = nobench::generateDataSet(cfg);
        qs = std::make_unique<nobench::QuerySet>(data, cfg);
        db = std::make_unique<Database>(
            data, layout::Layout::fixedSize(data.catalog.allAttrs(), 16),
            "gt");
    }
};

GtWorld &
world()
{
    static GtWorld w;
    return w;
}

class GroundTruth
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(GroundTruth, EngineMatchesNaiveSemantics)
{
    auto [tmpl, seed] = GetParam();
    GtWorld &w = world();
    Rng rng(static_cast<uint64_t>(seed) * 7919 + 13);
    Query q = w.qs->instantiate(tmpl, rng);

    Reference ref(w.data);
    ResultSet expected = ref.run(q);

    Executor exec(*w.db);
    ResultSet got = exec.run(q);

    EXPECT_EQ(got.rowCount(), expected.rowCount()) << q.name;
    EXPECT_TRUE(got.equals(expected)) << q.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllTemplatesThreeSeeds, GroundTruth,
    ::testing::Combine(
        ::testing::Range(0, static_cast<int>(nobench::kNumTemplates)),
        ::testing::Values(1, 2, 3)),
    [](const auto &info) {
        return "Q" + std::to_string(std::get<0>(info.param) + 1) +
               "_seed" + std::to_string(std::get<1>(info.param));
    });

TEST(GroundTruthShifted, ShiftedTemplatesMatchToo)
{
    GtWorld &w = world();
    Reference ref(w.data);
    Executor exec(*w.db);
    Rng rng(31337);
    for (int t = 0; t < nobench::kNumTemplates; ++t) {
        Query q = w.qs->instantiateShifted(t, rng);
        EXPECT_TRUE(exec.run(q).equals(ref.run(q))) << q.name;
    }
}

} // namespace
} // namespace dvp::engine
