/**
 * @file
 * Tests for live ingest (DESIGN.md §16): the row-major DeltaStore,
 * epoch-versioned snapshot isolation, delta-merged scans, the
 * LSM-style fold that drains the delta at a repartition, the data-
 * drift side of the change detector, the SQL INSERT surface, and the
 * wire-protocol write path with its allowInsert gate.
 *
 * The load-bearing invariant throughout: a query's result is a
 * function of its snapshot cut alone.  Digests must come out
 * bit-identical whether the visible documents sit in the delta tail,
 * were folded into fresh partitions, or anything in between — at
 * every thread count, plain and compressed.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "adaptive/adaptive_engine.hh"
#include "client/client.hh"
#include "engine/executor.hh"
#include "json/parser.hh"
#include "nobench/generator.hh"
#include "perf/memory_hierarchy.hh"
#include "server/server.hh"
#include "sql/run.hh"
#include "stats/change_detector.hh"
#include "storage/delta.hh"

namespace dvp
{
namespace
{

using adaptive::AdaptiveEngine;
using adaptive::Params;

// ---------------------------------------------------------------------
// DeltaStore.
// ---------------------------------------------------------------------

storage::Document
intDoc(int64_t oid, std::vector<std::pair<storage::AttrId, storage::Slot>>
                        attrs)
{
    storage::Document d;
    d.oid = oid;
    d.attrs = std::move(attrs);
    return d;
}

TEST(DeltaStore, AppendReadBackAcrossChunks)
{
    storage::DeltaStore delta(100);
    EXPECT_EQ(delta.firstOid(), 100);
    EXPECT_EQ(delta.size(), 0u);
    EXPECT_EQ(delta.bytes(), 0u);

    // Cross two chunk boundaries so the directory's release-published
    // chunks are exercised, not just the first.
    const size_t n = storage::DeltaStore::kChunkRows * 2 + 37;
    for (size_t i = 0; i < n; ++i) {
        int64_t oid = delta.append(intDoc(
            100 + static_cast<int64_t>(i),
            {{1, static_cast<storage::Slot>(i)}, {3, 7}}));
        EXPECT_EQ(oid, 100 + static_cast<int64_t>(i));
    }
    ASSERT_EQ(delta.size(), n);
    EXPECT_GT(delta.bytes(), 0u);
    for (size_t i = 0; i < n; i += 97) {
        const storage::Document &d = delta.doc(i);
        EXPECT_EQ(d.oid, 100 + static_cast<int64_t>(i));
        EXPECT_EQ(d.slotOf(1), static_cast<storage::Slot>(i));
        EXPECT_EQ(d.slotOf(3), 7);
        EXPECT_TRUE(storage::isNull(d.slotOf(2)));
    }
}

TEST(DeltaStore, ReadersSeeFixedPrefixDuringConcurrentAppends)
{
    storage::DeltaStore delta(0);
    std::atomic<bool> done{false};
    std::thread writer([&] {
        for (int64_t i = 0; i < 20000; ++i)
            delta.append(intDoc(i, {{1, i}}));
        done.store(true, std::memory_order_release);
    });
    // Lock-free readers: load size() once, then every row below that
    // prefix must already be fully published.
    while (!done.load(std::memory_order_acquire)) {
        size_t n = delta.size();
        for (size_t i = 0; i < n; i += 251) {
            const storage::Document &d = delta.doc(i);
            ASSERT_EQ(d.oid, static_cast<int64_t>(i));
            ASSERT_EQ(d.slotOf(1), static_cast<storage::Slot>(i));
        }
    }
    writer.join();
    EXPECT_EQ(delta.size(), 20000u);
}

// ---------------------------------------------------------------------
// ChangeDetector: ingest-driven data drift.
// ---------------------------------------------------------------------

TEST(ChangeDetectorIngest, StableAttributeMixStaysQuiet)
{
    stats::ChangeDetector det(16, 0.5);
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(det.observeIngest(intDoc(i, {{1, 1}, {2, 2}})));
    EXPECT_GE(det.dataWindowsCompleted(), 5u);
}

TEST(ChangeDetectorIngest, SparsenessShiftFires)
{
    stats::ChangeDetector det(16, 0.5);
    for (int i = 0; i < 32; ++i)
        EXPECT_FALSE(det.observeIngest(intDoc(i, {{1, 1}, {2, 2}})));
    bool fired = false;
    for (int i = 0; i < 32; ++i)
        fired |= det.observeIngest(intDoc(32 + i, {{8, 1}, {9, 2}}));
    EXPECT_TRUE(fired);
}

TEST(ChangeDetectorIngest, QueryAndDataWindowsAreIndependent)
{
    stats::ChangeDetector det(8, 0.5);
    engine::Query q;
    q.kind = engine::QueryKind::Project;
    q.projected = {1, 2};
    for (int i = 0; i < 16; ++i) {
        det.observe(q);
        det.observeIngest(intDoc(i, {{1, 1}}));
    }
    EXPECT_EQ(det.windowsCompleted(), 2u);
    EXPECT_EQ(det.dataWindowsCompleted(), 2u);
}

// ---------------------------------------------------------------------
// Engine fixture: one NoBench data set shared by every ingest test.
// ---------------------------------------------------------------------

/** JSON document carrying two ingest-only integer attributes.  The
 * values are deterministic functions of @p k, so the digest of a scan
 * over them is a pure function of how many are visible. */
json::JsonValue
ingestDoc(int64_t k)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "{\"ingq\": %lld, \"ingv\": %lld}",
                  static_cast<long long>(k),
                  static_cast<long long>(k * 7 + 3));
    json::ParseResult r = json::parse(buf);
    EXPECT_TRUE(r.ok) << r.error;
    return r.value;
}

/** The scan used throughout: every ingested doc matches, none of the
 * NoBench base docs do. */
const char *kIngestScan =
    "SELECT ingq, ingv FROM t WHERE ingq BETWEEN 0 AND 100000000";

class IngestWorld : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        uint64_t docs = 800;
        if (const char *env = std::getenv("DVP_TEST_DOCS"))
            docs = std::strtoull(env, nullptr, 10);
        cfg.numDocs = docs;
        cfg.seed = 4242;
        data = new engine::DataSet(nobench::generateDataSet(cfg));
    }

    static void
    TearDownTestSuite()
    {
        delete data;
        data = nullptr;
    }

    /** A fresh engine over a copy of the shared data set. */
    struct World
    {
        engine::DataSet data;
        std::unique_ptr<AdaptiveEngine> engine;

        explicit World(Params prm = defaultParams())
            : data(*IngestWorld::data)
        {
            engine = std::make_unique<AdaptiveEngine>(
                data, std::vector<engine::Query>{}, prm);
        }
    };

    static Params
    defaultParams()
    {
        Params prm;
        prm.adapt = false;       // folds only, never a layout change
        prm.background = false;  // deterministic inline folds
        prm.deltaFoldRows = 0;   // tests opt into the size trigger
        return prm;
    }

    /**
     * Reference digests: a serial, never-folding engine ingests docs
     * one at a time; expected[k] is the (digest, checksum, rows) of
     * kIngestScan with k ingested docs visible (1-based; index 0
     * unused).  Every configuration under test must reproduce these
     * exactly at the same cut.
     */
    struct Expected
    {
        uint64_t digest = 0;
        uint64_t checksum = 0;
        size_t rows = 0;
    };

    static std::vector<Expected>
    referenceDigests(size_t k_max)
    {
        World ref;
        std::vector<Expected> expected(k_max + 1);
        for (size_t k = 1; k <= k_max; ++k) {
            ref.engine->ingest(ingestDoc(static_cast<int64_t>(k)));
            sql::RunResult r =
                sql::runStatement(*ref.engine, kIngestScan);
            EXPECT_TRUE(r.ok) << r.error;
            EXPECT_EQ(r.rows.rowCount(), k);
            expected[k] = {r.rows.digest(), r.rows.checksum,
                           r.rows.rowCount()};
        }
        return expected;
    }

    static nobench::Config cfg;
    static engine::DataSet *data;
};

nobench::Config IngestWorld::cfg;
engine::DataSet *IngestWorld::data = nullptr;

// ---------------------------------------------------------------------
// Snapshot isolation.
// ---------------------------------------------------------------------

TEST_F(IngestWorld, SnapshotPinsItsDeltaPrefix)
{
    World w;
    for (int64_t k = 1; k <= 5; ++k)
        w.engine->ingest(ingestDoc(k));

    // The cut: base partitions + 5 delta rows.
    adaptive::Snapshot snap = w.engine->snapshotFull();
    EXPECT_EQ(snap.deltaRows, 5u);
    EXPECT_EQ(snap.epoch, snap.base->epoch());

    for (int64_t k = 6; k <= 10; ++k)
        w.engine->ingest(ingestDoc(k));
    EXPECT_EQ(w.engine->deltaRows(), 10u);

    // A query through the held snapshot keeps seeing exactly the cut,
    // no matter how much the writer appended since.
    engine::Query q;
    q.name = "ingest-scan";
    q.kind = engine::QueryKind::Select;
    q.selectAll = false;
    q.cond.op = engine::CondOp::Between;
    q.cond.attr = w.data.catalog.find("ingq");
    ASSERT_NE(q.cond.attr, storage::kNoAttr);
    q.cond.lo = 0;
    q.cond.hi = 100000000;
    q.projected = {q.cond.attr, w.data.catalog.find("ingv")};

    engine::Executor held(*snap.base);
    held.setDelta(snap.delta.get(), snap.deltaRows);
    engine::ResultSet rs_held = held.run(q);
    EXPECT_EQ(rs_held.rowCount(), 5u);

    // The engine's own execute() runs against the current cut.
    engine::ResultSet rs_now = w.engine->execute(q);
    EXPECT_EQ(rs_now.rowCount(), 10u);

    // And an executor over the full current prefix agrees with it bit
    // for bit.
    adaptive::Snapshot now = w.engine->snapshotFull();
    engine::Executor cur(*now.base);
    cur.setDelta(now.delta.get(), now.deltaRows);
    engine::ResultSet rs_cur = cur.run(q);
    EXPECT_EQ(rs_cur.digest(), rs_now.digest());
    EXPECT_EQ(rs_cur.checksum, rs_now.checksum);
}

TEST_F(IngestWorld, IngestAcksCarryCountAndEpoch)
{
    World w;
    size_t base_docs = w.data.docs.size();
    adaptive::IngestAck one =
        w.engine->ingestBatch({ingestDoc(1)});
    EXPECT_EQ(one.count, 1u);
    EXPECT_EQ(one.totalDocs, base_docs + 1);
    EXPECT_EQ(one.lastOid, static_cast<int64_t>(base_docs));

    adaptive::IngestAck batch =
        w.engine->ingestBatch({ingestDoc(2), ingestDoc(3)});
    EXPECT_EQ(batch.count, 2u);
    EXPECT_EQ(batch.totalDocs, base_docs + 3);
    EXPECT_EQ(batch.lastOid, static_cast<int64_t>(base_docs + 2));
    EXPECT_EQ(batch.epoch, w.engine->snapshot()->epoch());
}

// ---------------------------------------------------------------------
// Fold-state independence: pre-fold, mid-fold, post-fold digests.
// ---------------------------------------------------------------------

TEST_F(IngestWorld, DigestsIdenticalAcrossFoldStatesThreadsCompression)
{
    constexpr size_t kDocs = 48;
    std::vector<Expected> expected = referenceDigests(kDocs);

    for (size_t threads : {1u, 2u, 4u, 8u}) {
        for (bool compress : {false, true}) {
            Params prm = defaultParams();
            prm.threads = threads;
            prm.compress = compress;
            prm.deltaFoldRows = 16; // folds fire inline mid-run
            World w(prm);

            for (size_t k = 1; k <= kDocs; ++k) {
                w.engine->ingest(ingestDoc(static_cast<int64_t>(k)));
                sql::RunResult r =
                    sql::runStatement(*w.engine, kIngestScan);
                ASSERT_TRUE(r.ok) << r.error;
                EXPECT_EQ(r.rows.rowCount(), expected[k].rows)
                    << "threads=" << threads
                    << " compress=" << compress << " k=" << k;
                EXPECT_EQ(r.rows.digest(), expected[k].digest)
                    << "threads=" << threads
                    << " compress=" << compress << " k=" << k;
                EXPECT_EQ(r.rows.checksum, expected[k].checksum)
                    << "threads=" << threads
                    << " compress=" << compress << " k=" << k;
            }

            // The size trigger really fired: the delta was drained at
            // least twice and the audit trail says why.
            EXPECT_LT(w.engine->deltaRows(), kDocs);
            EXPECT_GE(w.engine->adaptation().repartitions.load(), 2u);
            uint64_t folded = 0;
            bool fold_trigger = false;
            for (const adaptive::AuditRecord &rec :
                 w.engine->auditTrail()) {
                folded += rec.deltaFolded;
                fold_trigger |= rec.trigger == "delta-fold";
            }
            EXPECT_GE(folded, prm.deltaFoldRows);
            EXPECT_TRUE(fold_trigger);

            // Every document survived the folds.
            sql::RunResult fin =
                sql::runStatement(*w.engine, kIngestScan);
            ASSERT_TRUE(fin.ok);
            EXPECT_EQ(fin.rows.rowCount(), kDocs);
        }
    }
}

// ---------------------------------------------------------------------
// Randomized concurrency: writers never block readers, and every
// reader result matches the reference digest for the cut it observed.
// ---------------------------------------------------------------------

TEST_F(IngestWorld, ConcurrentInsertsAndQueriesStayConsistent)
{
    constexpr size_t kDocs = 40;
    std::vector<Expected> expected = referenceDigests(kDocs);

    for (size_t threads : {1u, 2u, 4u, 8u}) {
        Params prm = defaultParams();
        prm.threads = threads;
        prm.background = true; // folds race the readers for real
        prm.deltaFoldRows = 12;
        World w(prm);

        // Seed one doc so the scan's attributes exist for parsing,
        // then share one parsed query across all reader threads.
        w.engine->ingest(ingestDoc(1));
        engine::Query q;
        q.name = "ingest-scan";
        q.kind = engine::QueryKind::Select;
        q.cond.op = engine::CondOp::Between;
        q.cond.attr = w.data.catalog.find("ingq");
        ASSERT_NE(q.cond.attr, storage::kNoAttr);
        q.cond.lo = 0;
        q.cond.hi = 100000000;
        q.projected = {q.cond.attr, w.data.catalog.find("ingv")};

        std::atomic<bool> writer_done{false};
        std::atomic<int> failures{0};
        std::thread writer([&] {
            for (size_t k = 2; k <= kDocs; ++k)
                w.engine->ingest(ingestDoc(static_cast<int64_t>(k)));
            writer_done.store(true, std::memory_order_release);
        });

        constexpr int kReaders = 3;
        std::vector<std::thread> readers;
        for (int t = 0; t < kReaders; ++t) {
            readers.emplace_back([&] {
                bool saw_final = false;
                while (!saw_final) {
                    bool last =
                        writer_done.load(std::memory_order_acquire);
                    engine::ResultSet rs = w.engine->execute(q);
                    size_t k = rs.rowCount();
                    if (k < 1 || k > kDocs ||
                        rs.digest() != expected[k].digest ||
                        rs.checksum != expected[k].checksum) {
                        ++failures;
                        return;
                    }
                    if (last && k == kDocs)
                        saw_final = true;
                }
            });
        }
        writer.join();
        for (std::thread &t : readers)
            t.join();
        EXPECT_EQ(failures.load(), 0)
            << "threads=" << threads
            << ": a reader observed a cut whose digest does not match "
               "the serial reference";
        w.engine->quiesce();
    }
}

// ---------------------------------------------------------------------
// Simulated traces exclude the delta by invariant.
// ---------------------------------------------------------------------

TEST_F(IngestWorld, SimulatedTracesRefuseANonEmptyDelta)
{
    World w;
    w.engine->ingest(ingestDoc(1));
    adaptive::Snapshot snap = w.engine->snapshotFull();
    ASSERT_EQ(snap.deltaRows, 1u);

    engine::Query q;
    q.name = "sim";
    q.kind = engine::QueryKind::Project;
    q.projected = {w.data.catalog.find("ingq")};

    // With an empty delta the traced path is untouched: same digest as
    // the timing path, so the paper figures stay byte-identical.
    engine::Executor plain(*snap.base);
    perf::MemoryHierarchy mh;
    engine::ResultSet traced = plain.run(q, mh);
    engine::ResultSet timed = plain.run(q);
    EXPECT_EQ(traced.digest(), timed.digest());

    // A non-empty delta must refuse the simulation overload outright
    // rather than silently tracing a superset of the sealed tables.
#if GTEST_HAS_DEATH_TEST
    GTEST_FLAG_SET(death_test_style, "threadsafe");
    engine::Executor withDelta(*snap.base);
    withDelta.setDelta(snap.delta.get(), snap.deltaRows);
    perf::MemoryHierarchy mh2;
    EXPECT_DEATH(withDelta.run(q, mh2), "empty delta");
#endif
}

// ---------------------------------------------------------------------
// Wire protocol: INSERT round-trip and the allowInsert gate.
// ---------------------------------------------------------------------

TEST_F(IngestWorld, WireInsertRoundTrip)
{
    World w;
    server::Config scfg;
    scfg.allowInsert = true;
    server::Server srv(*w.engine, scfg);
    ASSERT_EQ(srv.start(), "");

    client::Client c;
    ASSERT_EQ(c.connect("127.0.0.1", srv.port(), "ingest-test"), "");
    size_t base_docs = w.data.docs.size();

    client::Result ins = c.query(
        "INSERT INTO nobench VALUES ('{\"ingq\": 1, \"ingv\": 10}')");
    ASSERT_TRUE(ins.ok) << ins.error;
    EXPECT_TRUE(ins.isMessage);
    EXPECT_NE(ins.message.find("INSERT 1"), std::string::npos);
    EXPECT_NE(ins.message.find(std::to_string(base_docs + 1)),
              std::string::npos);

    // Batch form: several tuples, one ack.
    client::Result batch = c.query(
        "INSERT INTO nobench VALUES ('{\"ingq\": 2, \"ingv\": 17}'), "
        "('{\"ingq\": 3, \"ingv\": 24}')");
    ASSERT_TRUE(batch.ok) << batch.error;
    EXPECT_NE(batch.message.find("INSERT 2"), std::string::npos);

    // The next read on the same connection sees all three documents,
    // and the frame digest matches an in-process run.
    client::Result sel = c.query(kIngestScan);
    ASSERT_TRUE(sel.ok) << sel.error;
    EXPECT_EQ(sel.rows.size(), 3u);
    sql::RunResult local = sql::runStatement(*w.engine, kIngestScan);
    ASSERT_TRUE(local.ok);
    EXPECT_EQ(sel.digest, local.rows.digest());
    EXPECT_EQ(sel.checksum, local.rows.checksum);

    // STATS reports the delta-inclusive doc count and the gauges.
    client::Stats st = c.stats();
    ASSERT_TRUE(st.ok) << st.error;
    EXPECT_EQ(st.get("docs"), base_docs + 3);
    EXPECT_EQ(st.get("delta_rows"), 3u);
    EXPECT_GT(st.get("delta_bytes"), 0u);

    // Malformed JSON in the tuple is a typed parse error, and the
    // connection survives it.
    client::Result bad = c.query(
        "INSERT INTO nobench VALUES ('{\"ingq\": ')");
    EXPECT_FALSE(bad.ok);
    EXPECT_EQ(bad.errorCode, net::ErrorCode::Parse);
    client::Result again = c.query(kIngestScan);
    EXPECT_TRUE(again.ok) << again.error;

    c.close();
    srv.stop();
}

TEST_F(IngestWorld, WireInsertGatedWithoutAllowInsert)
{
    World w;
    server::Server srv(*w.engine, {}); // allowInsert defaults to off
    ASSERT_EQ(srv.start(), "");

    client::Client c;
    ASSERT_EQ(c.connect("127.0.0.1", srv.port(), "ingest-gate"), "");

    client::Result ins = c.query(
        "INSERT INTO nobench VALUES ('{\"ingq\": 1}')");
    EXPECT_FALSE(ins.ok);
    EXPECT_EQ(ins.errorCode, net::ErrorCode::ReadOnly);
    EXPECT_EQ(w.engine->deltaRows(), 0u);

    // The rejection is per-statement: the session stays usable.
    client::Result sel = c.query("SELECT str1, num FROM t");
    EXPECT_TRUE(sel.ok) << sel.error;

    c.close();
    srv.stop();
}

} // namespace
} // namespace dvp
