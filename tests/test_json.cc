/**
 * @file
 * Unit tests for src/json: DOM, parser, writer, flattener.
 */

#include <gtest/gtest.h>

#include "json/flatten.hh"
#include "json/parser.hh"
#include "json/value.hh"
#include "json/writer.hh"
#include "util/random.hh"

namespace dvp::json
{
namespace
{

TEST(JsonValue, TypesAndAccessors)
{
    EXPECT_TRUE(JsonValue().isNull());
    EXPECT_TRUE(JsonValue(nullptr).isNull());
    EXPECT_TRUE(JsonValue(true).asBool());
    EXPECT_EQ(JsonValue(int64_t{42}).asInt(), 42);
    EXPECT_EQ(JsonValue(7).asInt(), 7);
    EXPECT_DOUBLE_EQ(JsonValue(2.5).asDouble(), 2.5);
    EXPECT_EQ(JsonValue("hi").asString(), "hi");
    EXPECT_TRUE(JsonValue::makeArray().isArray());
    EXPECT_TRUE(JsonValue::makeObject().isObject());
}

TEST(JsonValue, IntPromotesToDouble)
{
    EXPECT_DOUBLE_EQ(JsonValue(3).asDouble(), 3.0);
}

TEST(JsonValue, ObjectSetFindOverwrite)
{
    JsonValue obj = JsonValue::makeObject();
    obj.set("a", JsonValue(1));
    obj.set("b", JsonValue(2));
    obj.set("a", JsonValue(3)); // overwrite keeps position
    ASSERT_NE(obj.find("a"), nullptr);
    EXPECT_EQ(obj.find("a")->asInt(), 3);
    EXPECT_EQ(obj.find("missing"), nullptr);
    EXPECT_EQ(obj.size(), 2u);
    EXPECT_EQ(obj.asObject()[0].first, "a"); // insertion order kept
}

TEST(JsonValue, DeepEquality)
{
    auto make = [] {
        JsonValue o = JsonValue::makeObject();
        o.set("xs", JsonValue(Elements{JsonValue(1), JsonValue("two")}));
        return o;
    };
    EXPECT_EQ(make(), make());
    JsonValue other = make();
    other.set("xs", JsonValue(Elements{JsonValue(1)}));
    EXPECT_NE(make(), other);
}

TEST(JsonValue, IntAndDoubleAreDistinct)
{
    EXPECT_NE(JsonValue(1), JsonValue(1.0));
}

TEST(Parser, Scalars)
{
    EXPECT_TRUE(parse("null").value.isNull());
    EXPECT_EQ(parse("true").value.asBool(), true);
    EXPECT_EQ(parse("false").value.asBool(), false);
    EXPECT_EQ(parse("123").value.asInt(), 123);
    EXPECT_EQ(parse("-7").value.asInt(), -7);
    EXPECT_DOUBLE_EQ(parse("2.5").value.asDouble(), 2.5);
    EXPECT_DOUBLE_EQ(parse("1e3").value.asDouble(), 1000.0);
    EXPECT_DOUBLE_EQ(parse("-1.5E-2").value.asDouble(), -0.015);
    EXPECT_EQ(parse("\"abc\"").value.asString(), "abc");
}

TEST(Parser, IntegerVsDoubleDisambiguation)
{
    EXPECT_TRUE(parse("42").value.isInt());
    EXPECT_TRUE(parse("42.0").value.isDouble());
    EXPECT_TRUE(parse("42e0").value.isDouble());
}

TEST(Parser, HugeIntegerFallsBackToDouble)
{
    ParseResult r = parse("123456789012345678901234567890");
    ASSERT_TRUE(r.ok);
    EXPECT_TRUE(r.value.isDouble());
}

TEST(Parser, Escapes)
{
    ParseResult r = parse(R"("a\"b\\c\/d\b\f\n\r\t")");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.value.asString(), "a\"b\\c/d\b\f\n\r\t");
}

TEST(Parser, UnicodeEscapes)
{
    EXPECT_EQ(parse(R"("A")").value.asString(), "A");
    EXPECT_EQ(parse(R"("é")").value.asString(), "\xc3\xa9");
    EXPECT_EQ(parse(R"("€")").value.asString(), "\xe2\x82\xac");
    // Surrogate pair: U+1F600.
    EXPECT_EQ(parse(R"("😀")").value.asString(),
              "\xf0\x9f\x98\x80");
}

TEST(Parser, RejectsBadSurrogates)
{
    EXPECT_FALSE(parse(R"("\ud83d")").ok);
    EXPECT_FALSE(parse(R"("\ude00")").ok);
    EXPECT_FALSE(parse(R"("\ud83dx")").ok);
}

TEST(Parser, NestedContainers)
{
    ParseResult r = parse(R"({"a":[1,{"b":[true,null]}],"c":{}})");
    ASSERT_TRUE(r.ok) << r.error;
    const JsonValue *a = r.value.find("a");
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a->asArray()[1].find("b")->asArray()[0].asBool(), true);
    EXPECT_TRUE(r.value.find("c")->isObject());
    EXPECT_EQ(r.value.find("c")->size(), 0u);
}

TEST(Parser, WhitespaceTolerance)
{
    EXPECT_TRUE(parse(" \n\t { \"a\" : [ 1 , 2 ] } \r\n ").ok);
}

TEST(Parser, DuplicateKeysLastWins)
{
    ParseResult r = parse(R"({"k":1,"k":2})");
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.value.find("k")->asInt(), 2);
    EXPECT_EQ(r.value.size(), 1u);
}

TEST(Parser, ErrorsCarryPosition)
{
    ParseResult r = parse("{\n  \"a\": tru\n}");
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.error.find("line 2"), std::string::npos);
}

TEST(Parser, RejectsMalformedDocuments)
{
    const char *bad[] = {
        "",           "{",        "}",        "[1,",     "[1,]",
        "{\"a\":}",   "{\"a\"1}", "nul",      "tru",     "+1",
        "01x",        "1.",       "1e",       "\"abc",   "\"\x01\"",
        "{\"a\":1,}", "[]extra",  "{\"a\" 1}",
    };
    for (const char *doc : bad)
        EXPECT_FALSE(parse(doc).ok) << "accepted: " << doc;
}

TEST(Parser, DepthLimit)
{
    std::string deep(300, '[');
    deep += std::string(300, ']');
    EXPECT_FALSE(parse(deep, 256).ok);
    EXPECT_TRUE(parse(deep, 512).ok);
}

TEST(Parser, ParseLines)
{
    std::string err;
    auto docs = parseLines("{\"a\":1}\n\n{\"a\":2}\n", &err);
    ASSERT_EQ(docs.size(), 2u) << err;
    EXPECT_EQ(docs[1].find("a")->asInt(), 2);
}

TEST(Parser, ParseLinesReportsErrorLine)
{
    std::string err;
    auto docs = parseLines("{\"a\":1}\nbad\n", &err);
    EXPECT_EQ(docs.size(), 1u);
    EXPECT_NE(err.find("line 2"), std::string::npos);
}

TEST(Writer, CompactRoundTrip)
{
    const char *docs[] = {
        R"({"a":1,"b":[true,null,"x"],"c":{"d":-2}})",
        R"([1,2.5,""])",
        R"("plain")",
        R"({})",
        R"([])",
    };
    for (const char *doc : docs) {
        ParseResult first = parse(doc);
        ASSERT_TRUE(first.ok) << doc << " error: " << first.error;
        std::string text = write(first.value);
        ParseResult second = parse(text);
        ASSERT_TRUE(second.ok) << text;
        EXPECT_EQ(first.value, second.value) << text;
    }
}

TEST(Writer, EscapesControlCharacters)
{
    EXPECT_EQ(write(JsonValue(std::string("a\nb\x01"))),
              "\"a\\nb\\u0001\"");
}

TEST(Writer, PrettyIsReparseable)
{
    ParseResult r = parse(R"({"a":[1,2],"b":{"c":true}})");
    ASSERT_TRUE(r.ok);
    ParseResult again = parse(writePretty(r.value));
    ASSERT_TRUE(again.ok);
    EXPECT_EQ(r.value, again.value);
}

TEST(Flatten, NestedObjectAndArrayPaths)
{
    ParseResult r = parse(
        R"({"name":"John","nested":{"str":"x","n":2},"arr":["a","b"]})");
    ASSERT_TRUE(r.ok);
    auto flat = flatten(r.value);
    ASSERT_EQ(flat.size(), 5u);
    EXPECT_EQ(flat[0].path, "name");
    EXPECT_EQ(flat[1].path, "nested.str");
    EXPECT_EQ(flat[2].path, "nested.n");
    EXPECT_EQ(flat[3].path, "arr[0]");
    EXPECT_EQ(flat[4].path, "arr[1]");
}

TEST(Flatten, PaperFigure1Example)
{
    // The paper's example object: nested employee records.
    ParseResult r = parse(R"({
        "name": "John", "manager": true, "salary": 100,
        "institution": "IBM",
        "employees": ["Mary", "Sam",
            {"name": "Jim", "salary": "tier-1",
             "employees": ["Jack"]}]
    })");
    ASSERT_TRUE(r.ok) << r.error;
    auto flat = flatten(r.value);
    auto has = [&](const std::string &p, const JsonValue &v) {
        for (const auto &fa : flat)
            if (fa.path == p && fa.value == v)
                return true;
        return false;
    };
    EXPECT_TRUE(has("employees[0]", JsonValue("Mary")));
    EXPECT_TRUE(has("employees[2].name", JsonValue("Jim")));
    EXPECT_TRUE(has("employees[2].salary", JsonValue("tier-1")));
    EXPECT_TRUE(has("employees[2].employees[0]", JsonValue("Jack")));
    EXPECT_EQ(flat.size(), 9u); // matches the paper's Table I rows
}

TEST(Flatten, PreservesExplicitNulls)
{
    ParseResult r = parse(R"({"a":null,"b":1})");
    ASSERT_TRUE(r.ok);
    auto flat = flatten(r.value);
    ASSERT_EQ(flat.size(), 2u);
    EXPECT_TRUE(flat[0].value.isNull());
}

TEST(Flatten, EmptyContainersVanish)
{
    ParseResult r = parse(R"({"a":{},"b":[],"c":1})");
    ASSERT_TRUE(r.ok);
    auto flat = flatten(r.value);
    ASSERT_EQ(flat.size(), 1u);
    EXPECT_EQ(flat[0].path, "c");
}

TEST(ParsePath, Steps)
{
    auto steps = parsePath("a.b[2].c");
    ASSERT_EQ(steps.size(), 4u);
    EXPECT_EQ(steps[0], (PathStep{"a", -1}));
    EXPECT_EQ(steps[1], (PathStep{"b", -1}));
    EXPECT_EQ(steps[2], (PathStep{"", 2}));
    EXPECT_EQ(steps[3], (PathStep{"c", -1}));
}

TEST(Unflatten, InvertsFlatten)
{
    ParseResult r = parse(R"({
        "name": "John",
        "nested": {"a": 1, "b": {"c": "deep"}},
        "arr": [10, {"x": true}, 30]
    })");
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(unflatten(flatten(r.value)), r.value);
}

TEST(Parser, RandomByteFuzzNeverCrashes)
{
    // Robustness property: arbitrary bytes either parse or produce an
    // error message — never a crash, hang, or empty error.
    Rng rng(0xf00d);
    for (int iter = 0; iter < 500; ++iter) {
        std::string junk;
        size_t len = rng.below(64);
        for (size_t i = 0; i < len; ++i)
            junk += static_cast<char>(rng.below(256));
        ParseResult r = parse(junk);
        if (!r.ok) {
            EXPECT_FALSE(r.error.empty());
        }
    }
}

TEST(Parser, MutatedValidDocumentsNeverCrash)
{
    // Take a valid document and flip random bytes: the parser must
    // stay well-defined, and accepted mutants must round-trip.
    std::string base =
        R"({"a":1,"b":[true,null,"x"],"c":{"d":-2.5e3,"e":"é"}})";
    Rng rng(0xbeef);
    for (int iter = 0; iter < 500; ++iter) {
        std::string doc = base;
        size_t flips = 1 + rng.below(3);
        for (size_t f = 0; f < flips; ++f)
            doc[rng.below(doc.size())] =
                static_cast<char>(rng.below(128));
        ParseResult r = parse(doc);
        if (r.ok) {
            ParseResult again = parse(write(r.value));
            ASSERT_TRUE(again.ok);
            EXPECT_EQ(r.value, again.value);
        }
    }
}

TEST(Unflatten, RandomRoundTripProperty)
{
    // Property: unflatten(flatten(doc)) == doc for random documents
    // without empty containers.
    Rng rng(99);
    for (int iter = 0; iter < 30; ++iter) {
        JsonValue doc = JsonValue::makeObject();
        int fields = 1 + static_cast<int>(rng.below(6));
        for (int f = 0; f < fields; ++f) {
            std::string key = "k" + std::to_string(f);
            switch (rng.below(4)) {
              case 0:
                doc.set(key, JsonValue(rng.range(-100, 100)));
                break;
              case 1:
                doc.set(key, JsonValue(rng.string(5)));
                break;
              case 2: {
                JsonValue arr = JsonValue::makeArray();
                auto n = 1 + rng.below(4);
                for (uint64_t i = 0; i < n; ++i)
                    arr.push(JsonValue(rng.range(0, 9)));
                doc.set(key, std::move(arr));
                break;
              }
              default: {
                JsonValue obj = JsonValue::makeObject();
                obj.set("inner", JsonValue(rng.chance(0.5)));
                doc.set(key, std::move(obj));
                break;
              }
            }
        }
        EXPECT_EQ(unflatten(flatten(doc)), doc);
    }
}

} // namespace
} // namespace dvp::json
