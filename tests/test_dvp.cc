/**
 * @file
 * Tests for the DVP core: cost model equations, initial partitioning,
 * Algorithm 1 search, and their interplay on NoBench.
 */

#include <gtest/gtest.h>

#include <set>

#include "dvp/cost_model.hh"
#include "dvp/initial_partitioning.hh"
#include "dvp/partitioner.hh"
#include "json/parser.hh"
#include "nobench/generator.hh"
#include "nobench/queries.hh"
#include "nobench/workload.hh"

namespace dvp::core
{
namespace
{

using engine::CondOp;
using engine::Query;
using engine::QueryKind;
using layout::Layout;
using storage::AttrId;

/**
 * Hand-built world: 4 attributes with controlled sparseness.
 *   a0: dense, a1: dense, a2: sparse 10%, a3: sparse 10% (co-present
 *   with a2).
 * Queries: q0 projects {a0,a1} (sel 1), q1 selects * where a0 (sel .1).
 */
class SmallCost : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        for (int i = 0; i < 4; ++i)
            ids.push_back(data.catalog.ensure("a" + std::to_string(i)));
        for (int d = 0; d < 100; ++d) {
            std::vector<json::FlatAttr> flat;
            flat.push_back({"a0", json::JsonValue(d)});
            flat.push_back({"a1", json::JsonValue(d * 2)});
            if (d < 10) {
                flat.push_back({"a2", json::JsonValue(d)});
                flat.push_back({"a3", json::JsonValue(d)});
            }
            data.addFlat(flat);
        }

        Query q0;
        q0.name = "p";
        q0.kind = QueryKind::Project;
        q0.projected = {ids[0], ids[1]};
        q0.frequency = 0.6;
        q0.selectivity = 1.0;

        Query q1;
        q1.name = "s";
        q1.kind = QueryKind::Select;
        q1.selectAll = true;
        q1.cond.op = CondOp::Eq;
        q1.cond.attr = ids[0];
        q1.cond.lo = 5;
        q1.frequency = 0.4;
        q1.selectivity = 0.1;

        queries = {q0, q1};
    }

    engine::DataSet data;
    std::vector<AttrId> ids;
    std::vector<Query> queries;
};

TEST_F(SmallCost, SparsenessFeedsEquation3)
{
    CostModel m(data.catalog, queries);
    EXPECT_DOUBLE_EQ(m.spa(ids[0]), 1.0);
    EXPECT_DOUBLE_EQ(m.spa(ids[2]), 0.1);
}

TEST_F(SmallCost, Equation1Selectivities)
{
    CostModel m(data.catalog, queries);
    // q0 (index 0): projection - selection part only.
    EXPECT_DOUBLE_EQ(m.selQA(0, ids[0]), 1.0); // sel(q0) = 1
    EXPECT_DOUBLE_EQ(m.selQA(0, ids[2]), 0.0); // not accessed
    // q1 (index 1): condition attr = 1, * attrs = sel(q).
    EXPECT_DOUBLE_EQ(m.selQA(1, ids[0]), 1.0);
    EXPECT_DOUBLE_EQ(m.selQA(1, ids[2]), 0.1);
}

TEST_F(SmallCost, EdgeWeightsUseExplicitCoAccessOnly)
{
    CostModel m(data.catalog, queries);
    // a0-a1 co-accessed by q0 (ratio 1) and... q1 explicitly accesses
    // only a0 (condition); * does not create edges (DESIGN.md 3b).
    EXPECT_DOUBLE_EQ(m.edgeWeight(ids[0], ids[1]), 0.6);
    EXPECT_DOUBLE_EQ(m.edgeWeight(ids[2], ids[3]), 0.0);
    EXPECT_DOUBLE_EQ(m.edgeWeight(ids[0], ids[2]), 0.0);
}

TEST_F(SmallCost, EdgeWeightSparsenessRatio)
{
    // Add a query co-accessing a dense and a sparse attribute: the
    // spa ratio (0.1 / 1.0) scales the edge weight (Eq. 7).
    Query q2;
    q2.name = "x";
    q2.kind = QueryKind::Project;
    q2.projected = {ids[0], ids[2]};
    q2.frequency = 1.0;
    q2.selectivity = 1.0;
    CostModel m(data.catalog, {q2});
    EXPECT_NEAR(m.edgeWeight(ids[0], ids[2]), 0.1, 1e-12);
}

TEST_F(SmallCost, RacZeroForSingletons)
{
    CostModel m(data.catalog, queries);
    // A singleton partition has spa(p) = spa(a), sel(q,p) = sel(q,a):
    // every term in Eq. 4 vanishes.
    EXPECT_DOUBLE_EQ(m.racOfPartition({ids[0]}), 0.0);
    EXPECT_DOUBLE_EQ(m.racOfPartition({ids[2]}), 0.0);
}

TEST_F(SmallCost, RacPenalizesMixedPartitions)
{
    CostModel m(data.catalog, queries);
    // Dense + sparse in one partition: redundant access cost appears.
    double mixed = m.racOfPartition({ids[0], ids[2]});
    double dense_pair = m.racOfPartition({ids[0], ids[1]});
    EXPECT_GT(mixed, 0.0);
    EXPECT_GT(mixed, dense_pair);
}

TEST_F(SmallCost, NormalizersAreExtremes)
{
    CostModel m(data.catalog, queries);
    Layout row = Layout::rowBased(ids);
    Layout col = Layout::columnBased(ids);
    // RAC is maximal for the row layout (it IS the normalizer).
    EXPECT_DOUBLE_EQ(m.rac(row), m.racMax());
    EXPECT_DOUBLE_EQ(m.rac(col), 0.0);
    // CPC is maximal for the column layout.
    EXPECT_DOUBLE_EQ(m.cpc(col), m.cpcMax());
    EXPECT_DOUBLE_EQ(m.cpc(row), 0.0);
}

TEST_F(SmallCost, CostCombinesWithAlpha)
{
    CostParams half;
    half.alpha = 0.5;
    CostModel m(data.catalog, queries, half);
    Layout row = Layout::rowBased(ids);
    Layout col = Layout::columnBased(ids);
    EXPECT_NEAR(m.cost(row), 0.5, 1e-12); // all RAC, normalized to 1
    EXPECT_NEAR(m.cost(col), 0.5, 1e-12); // all CPC

    CostParams rac_only;
    rac_only.alpha = 0.0;
    CostModel m2(data.catalog, queries, rac_only);
    EXPECT_NEAR(m2.cost(col), 0.0, 1e-12);
    EXPECT_NEAR(m2.cost(row), 1.0, 1e-12);
}

TEST_F(SmallCost, GoodLayoutBeatsBothExtremes)
{
    CostModel m(data.catalog, queries);
    // {a0,a1} together (the q0 pair), sparse attrs separate.
    Layout good({{ids[0], ids[1]}, {ids[2], ids[3]}});
    EXPECT_LT(m.cost(good), m.cost(Layout::rowBased(ids)));
    EXPECT_LT(m.cost(good), m.cost(Layout::columnBased(ids)));
}

TEST_F(SmallCost, IncludeExcludeMatchesExplicitPartition)
{
    CostModel m(data.catalog, queries);
    // Property (invariant 4): virtual include/exclude equals a real
    // partition evaluation.
    std::vector<AttrId> base{ids[0], ids[2]};
    EXPECT_DOUBLE_EQ(
        m.racOfPartition(base, ids[2], storage::kNoAttr),
        m.racOfPartition({ids[0]}));
    EXPECT_DOUBLE_EQ(
        m.racOfPartition(base, storage::kNoAttr, ids[1]),
        m.racOfPartition({ids[0], ids[2], ids[1]}));
    EXPECT_DOUBLE_EQ(m.racOfPartition(base, ids[0], ids[3]),
                     m.racOfPartition({ids[2], ids[3]}));
}

TEST_F(SmallCost, SearchFindsTheGoodLayout)
{
    Partitioner p(data, queries);
    SearchResult res = p.run();
    res.layout.validate();
    EXPECT_LE(res.finalCost, res.initialCost);
    // a0 and a1 must share a partition; sparse attrs must not join
    // dense ones.
    EXPECT_EQ(res.layout.partitionOf(ids[0]),
              res.layout.partitionOf(ids[1]));
    EXPECT_NE(res.layout.partitionOf(ids[2]),
              res.layout.partitionOf(ids[0]));
}

TEST_F(SmallCost, RefineFromRowAndColumnConverge)
{
    Partitioner p(data, queries);
    SearchResult from_row = p.refine(Layout::rowBased(ids));
    SearchResult from_col = p.refine(Layout::columnBased(ids));
    EXPECT_LE(from_row.finalCost, from_row.initialCost);
    EXPECT_LE(from_col.finalCost, from_col.initialCost);
    // Both runs must keep the q0 pair together.
    EXPECT_EQ(from_row.layout.partitionOf(ids[0]),
              from_row.layout.partitionOf(ids[1]));
    EXPECT_EQ(from_col.layout.partitionOf(ids[0]),
              from_col.layout.partitionOf(ids[1]));
}

TEST_F(SmallCost, IterationCapRespected)
{
    SearchParams prm;
    prm.maxIterations = 1;
    Partitioner p(data, queries, prm);
    SearchResult res = p.refine(Layout::columnBased(ids));
    EXPECT_LE(res.iterations, 1u);
    res.layout.validate();
}

// ---------------------------------------------------------------------
// Initial partitioning.
// ---------------------------------------------------------------------

TEST(InitialPartitioning, QueriesGroupExplicitAttrs)
{
    engine::DataSet data;
    AttrId a = data.catalog.ensure("a");
    AttrId b = data.catalog.ensure("b");
    AttrId c = data.catalog.ensure("c");
    AttrId d = data.catalog.ensure("d");
    std::vector<json::FlatAttr> flat{{"a", json::JsonValue(1)},
                                     {"b", json::JsonValue(1)},
                                     {"c", json::JsonValue(1)},
                                     {"d", json::JsonValue(1)}};
    data.addFlat(flat);

    Query q;
    q.kind = QueryKind::Project;
    q.projected = {a, c};
    q.frequency = 1.0;
    q.selectivity = 1.0;

    Layout l = initialPartitioning(data, {q});
    l.validate();
    EXPECT_EQ(l.attrCount(), 4u);
    EXPECT_EQ(l.partitionOf(a), l.partitionOf(c));
    // b and d were unaccessed but co-present in every document: the
    // signature clustering co-locates them.
    EXPECT_EQ(l.partitionOf(b), l.partitionOf(d));
    EXPECT_NE(l.partitionOf(a), l.partitionOf(b));
}

TEST(InitialPartitioning, FrequencyOrderWinsConflicts)
{
    engine::DataSet data;
    AttrId a = data.catalog.ensure("a");
    AttrId b = data.catalog.ensure("b");
    AttrId c = data.catalog.ensure("c");
    std::vector<json::FlatAttr> flat{{"a", json::JsonValue(1)},
                                     {"b", json::JsonValue(1)},
                                     {"c", json::JsonValue(1)}};
    data.addFlat(flat);

    Query low;
    low.kind = QueryKind::Project;
    low.projected = {a, b};
    low.frequency = 0.2;
    Query high;
    high.kind = QueryKind::Project;
    high.projected = {b, c};
    high.frequency = 0.8;

    Layout l = initialPartitioning(data, {low, high});
    // The frequent query claims {b, c}; the rare one gets {a} alone.
    EXPECT_EQ(l.partitionOf(b), l.partitionOf(c));
    EXPECT_NE(l.partitionOf(a), l.partitionOf(b));
}

TEST(InitialPartitioning, FallbackWithoutDocsIsColumnar)
{
    engine::DataSet data;
    data.catalog.ensure("a");
    data.catalog.ensure("b");
    Layout l = initialPartitioning(data, {});
    EXPECT_EQ(l.partitionCount(), 2u);
}

// ---------------------------------------------------------------------
// NoBench-scale behaviour (the paper's headline DVP facts).
// ---------------------------------------------------------------------

class NoBenchDvp : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        cfg.numDocs = 4000;
        cfg.seed = 31;
        data = new engine::DataSet(nobench::generateDataSet(cfg));
        nobench::QuerySet qs(*data, cfg);
        Rng rng(77);
        queries = new std::vector<Query>(
            nobench::representatives(qs, nobench::Mix::uniform(), rng));
    }
    static void
    TearDownTestSuite()
    {
        delete queries;
        delete data;
        data = nullptr;
        queries = nullptr;
    }

    static nobench::Config cfg;
    static engine::DataSet *data;
    static std::vector<Query> *queries;
};

nobench::Config NoBenchDvp::cfg;
engine::DataSet *NoBenchDvp::data = nullptr;
std::vector<Query> *NoBenchDvp::queries = nullptr;

TEST_F(NoBenchDvp, InitialLayoutMatchesTableIVShape)
{
    Layout l = initialPartitioning(*data, *queries);
    l.validate();
    EXPECT_EQ(l.attrCount(), 1019u);
    // Paper Table IV: DVP uses 109 tables.  Expect ~100 sparse-group
    // partitions + a handful of query/dense partitions.
    EXPECT_GE(l.partitionCount(), 100u);
    EXPECT_LE(l.partitionCount(), 120u);

    // Sparse groups stay whole: sparse_110 and sparse_119 share a
    // partition via Q3; sparse_555 and sparse_551 via co-presence.
    const auto &cat = data->catalog;
    EXPECT_EQ(l.partitionOf(cat.find("sparse_110")),
              l.partitionOf(cat.find("sparse_119")));
    EXPECT_EQ(l.partitionOf(cat.find("sparse_555")),
              l.partitionOf(cat.find("sparse_551")));
    EXPECT_NE(l.partitionOf(cat.find("sparse_555")),
              l.partitionOf(cat.find("sparse_665")));
    // Sparse never mixes with dense.
    EXPECT_NE(l.partitionOf(cat.find("sparse_555")),
              l.partitionOf(cat.find("str2")));
}

TEST_F(NoBenchDvp, SearchConvergesInSecondsAt1019Attrs)
{
    Partitioner p(*data, *queries);
    SearchResult res = p.run();
    res.layout.validate();
    EXPECT_EQ(res.layout.attrCount(), 1019u);
    EXPECT_LE(res.finalCost, res.initialCost);
    // The paper's headline: 1000+ attributes partitioned within a few
    // seconds (we allow 30 s for slow CI machines; typical is < 5 s).
    EXPECT_LT(res.seconds, 30.0);
    // And the final shape stays Table-IV-like.
    EXPECT_GE(res.layout.partitionCount(), 90u);
    EXPECT_LE(res.layout.partitionCount(), 130u);
}

TEST_F(NoBenchDvp, CostModelPrefersDvpOverBaselines)
{
    CostModel m(data->catalog, *queries);
    Partitioner p(*data, *queries);
    SearchResult res = p.run();
    auto attrs = data->catalog.allAttrs();
    EXPECT_LT(m.cost(res.layout), m.cost(Layout::rowBased(attrs)));
    EXPECT_LT(m.cost(res.layout), m.cost(Layout::columnBased(attrs)));
}

TEST_F(NoBenchDvp, AlphaExtremesChangeThePreferredExtreme)
{
    auto attrs = data->catalog.allAttrs();
    CostParams rac_only;
    rac_only.alpha = 0.0;
    CostModel mr(data->catalog, *queries, rac_only);
    EXPECT_LT(mr.cost(Layout::columnBased(attrs)),
              mr.cost(Layout::rowBased(attrs)));

    CostParams cpc_only;
    cpc_only.alpha = 1.0;
    CostModel mc(data->catalog, *queries, cpc_only);
    EXPECT_LT(mc.cost(Layout::rowBased(attrs)),
              mc.cost(Layout::columnBased(attrs)));
}

TEST_F(NoBenchDvp, DeltaEvaluationMatchesFullRecompute)
{
    // Property (invariant 4): a full cost recompute after each applied
    // move equals the search's incremental bookkeeping.  We approximate
    // by verifying cost(final layout) == finalCost.
    Partitioner p(*data, *queries);
    SearchResult res = p.run();
    CostModel m(data->catalog, *queries);
    EXPECT_NEAR(m.cost(res.layout), res.finalCost, 1e-9);
}

} // namespace
} // namespace dvp::core
