/**
 * @file
 * Morsel-driven parallel execution tests.
 *
 * The contract under test (DESIGN.md "Threading model"): for every
 * NoBench query kind and every thread count, the parallel executor
 * returns the serial result bit-for-bit (same rows in the same order,
 * same oids, same checksum), and the traced overload's simulated
 * counters are independent of the thread knob because traced runs are
 * pinned to the serial path.  A final suite exercises the adaptive
 * engine with concurrent callers and a background repartition (the
 * TSan configuration of scripts/ci.sh makes that a race hunt).
 *
 * Scale comes from DVP_TEST_DOCS (default 4000) so the ThreadSanitizer
 * build can dial it down without editing the test.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>

#include "adaptive/adaptive_engine.hh"
#include "dvp/partitioner.hh"
#include "engine/database.hh"
#include "engine/executor.hh"
#include "engine/query.hh"
#include "nobench/generator.hh"
#include "nobench/queries.hh"
#include "nobench/workload.hh"
#include "perf/memory_hierarchy.hh"
#include "util/thread_pool.hh"

namespace dvp
{
namespace
{

using engine::Database;
using engine::DataSet;
using engine::Executor;
using engine::Query;
using engine::ResultSet;
using layout::Layout;

size_t
testDocs()
{
    if (const char *env = std::getenv("DVP_TEST_DOCS"))
        return std::strtoull(env, nullptr, 10);
    return 4000;
}

/** Shared world: data, queries, serial references on row and DVP. */
struct ParallelWorld
{
    nobench::Config cfg;
    DataSet data;
    std::vector<Query> queries;
    std::unique_ptr<Database> row;
    std::unique_ptr<Database> dvp;
    std::vector<ResultSet> row_ref; ///< serial reference per template
    std::vector<ResultSet> dvp_ref;

    ParallelWorld()
    {
        cfg.numDocs = testDocs();
        cfg.seed = 7331;
        data = nobench::generateDataSet(cfg);
        nobench::QuerySet qs(data, cfg);
        Rng rng(99);
        for (int t = 0; t < nobench::kNumTemplates; ++t)
            queries.push_back(qs.instantiate(t, rng));

        row = std::make_unique<Database>(
            data, Layout::rowBased(data.catalog.allAttrs()), "row");

        std::vector<Query> reps = nobench::representatives(
            qs, nobench::Mix::uniform(), rng);
        core::Partitioner partitioner(data, reps);
        dvp = std::make_unique<Database>(data, partitioner.run().layout,
                                         "DVP");

        Executor row_exec(*row);
        Executor dvp_exec(*dvp);
        for (const Query &q : queries) {
            row_ref.push_back(row_exec.run(q));
            dvp_ref.push_back(dvp_exec.run(q));
        }
    }
};

ParallelWorld &
world()
{
    static ParallelWorld w;
    return w;
}

void
expectSame(const ResultSet &got, const ResultSet &ref)
{
    EXPECT_EQ(got.rowCount(), ref.rowCount());
    EXPECT_EQ(got.checksum, ref.checksum);
    EXPECT_EQ(got.oids, ref.oids);
    EXPECT_EQ(got.rows, ref.rows); // bit-identical, not just equivalent
    EXPECT_EQ(got.digest(), ref.digest());
}

class MorselExecution : public ::testing::TestWithParam<int>
{
};

TEST_P(MorselExecution, RowLayoutMatchesSerialAtEveryThreadCount)
{
    ParallelWorld &w = world();
    const Query &q = w.queries[GetParam()];
    for (size_t threads : {1u, 2u, 4u, 8u}) {
        Executor exec(*w.row, threads);
        // Small morsels force many batches even at test scale.
        exec.setMorselRows(64);
        expectSame(exec.run(q), w.row_ref[GetParam()]);
    }
}

TEST_P(MorselExecution, DvpLayoutMatchesSerialAtEveryThreadCount)
{
    ParallelWorld &w = world();
    const Query &q = w.queries[GetParam()];
    for (size_t threads : {2u, 4u, 8u}) {
        Executor exec(*w.dvp, threads);
        exec.setMorselRows(64);
        expectSame(exec.run(q), w.dvp_ref[GetParam()]);
    }
}

TEST_P(MorselExecution, TracedCountersIndependentOfThreadKnob)
{
    // The simulation overload is pinned to the serial path, so an
    // executor configured with 8 threads must produce exactly the
    // 1-thread counters (DESIGN.md: simulated figures model one core).
    ParallelWorld &w = world();
    const Query &q = w.queries[GetParam()];

    perf::MemoryHierarchy mh_serial;
    Executor serial(*w.dvp, 1);
    ResultSet rs_serial = serial.run(q, mh_serial);

    perf::MemoryHierarchy mh_threaded;
    Executor threaded(*w.dvp, 8);
    threaded.setMorselRows(64);
    ResultSet rs_threaded = threaded.run(q, mh_threaded);

    expectSame(rs_threaded, rs_serial);
    auto a = mh_serial.counters();
    auto b = mh_threaded.counters();
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.l1Misses, b.l1Misses);
    EXPECT_EQ(a.l2Misses, b.l2Misses);
    EXPECT_EQ(a.l3Misses, b.l3Misses);
    EXPECT_EQ(a.tlbMisses, b.tlbMisses);
}

INSTANTIATE_TEST_SUITE_P(
    AllQueries, MorselExecution,
    ::testing::Range(0, static_cast<int>(nobench::kNumTemplates)),
    [](const auto &info) {
        return "Q" + std::to_string(info.param + 1);
    });

TEST(MorselExecution, DefaultMorselSizeAlsoMatches)
{
    // The other tests shrink morsels to stress the merge; make sure
    // the production granularity agrees too.
    ParallelWorld &w = world();
    for (size_t qi = 0; qi < w.queries.size(); ++qi) {
        Executor exec(*w.dvp, 4);
        expectSame(exec.run(w.queries[qi]), w.dvp_ref[qi]);
    }
}

TEST(MorselExecution, ThreadCountAboveLaneCountClamps)
{
    ParallelWorld &w = world();
    Executor exec(*w.row, 1024); // far beyond the pool's lane count
    exec.setMorselRows(64);
    expectSame(exec.run(w.queries[nobench::kQ1]),
               w.row_ref[nobench::kQ1]);
}

TEST(AdaptiveParallel, ConcurrentExecuteWithBackgroundRepartition)
{
    // Several caller threads issuing morsel-parallel queries while the
    // engine detects a workload change and swaps the database on a
    // background thread.  Correctness bar: every result matches the
    // serial reference for whatever layout the query ran on — which
    // the layout-invariance property reduces to "matches the row
    // reference".  Under TSan this doubles as the data-race test for
    // the snapshot/swap and stats paths.
    nobench::Config cfg;
    cfg.numDocs = std::min<size_t>(testDocs(), 1500);
    cfg.seed = 4242;
    DataSet data = nobench::generateDataSet(cfg);
    nobench::QuerySet qs(data, cfg);
    Rng rng(17);

    std::vector<Query> initial;
    for (int t = 0; t < 3; ++t)
        initial.push_back(qs.instantiate(t, rng));

    adaptive::Params prm;
    prm.window = 40;
    prm.changeThreshold = 0.3;
    prm.background = true;
    prm.threads = 4;
    adaptive::AdaptiveEngine eng(data, initial, prm);

    Database row(data, Layout::rowBased(data.catalog.allAttrs()),
                 "row");
    Executor row_exec(row);

    // Reference results for a shifted workload (drives the detector).
    std::vector<Query> shifted;
    for (int t = 0; t < nobench::kNumTemplates; ++t)
        shifted.push_back(qs.instantiateShifted(t, rng));
    std::vector<ResultSet> refs;
    for (const Query &q : shifted)
        refs.push_back(row_exec.run(q));

    constexpr int kCallers = 3;
    constexpr int kRounds = 30;
    std::vector<std::thread> callers;
    std::vector<int> failures(kCallers, 0);
    for (int c = 0; c < kCallers; ++c) {
        callers.emplace_back([&, c] {
            Rng crng(100 + c);
            for (int r = 0; r < kRounds; ++r) {
                size_t qi = crng.below(shifted.size());
                ResultSet rs = eng.execute(shifted[qi]);
                if (!rs.equals(refs[qi]))
                    ++failures[c];
            }
        });
    }
    for (auto &t : callers)
        t.join();
    eng.quiesce();

    for (int c = 0; c < kCallers; ++c)
        EXPECT_EQ(failures[c], 0) << "caller " << c;

    // The shifted workload must have tripped at least one detection;
    // repartitions may still be in flight counts but detections are
    // recorded synchronously.
    EXPECT_GE(eng.adaptation().changesDetected, 1u);
}

} // namespace
} // namespace dvp
