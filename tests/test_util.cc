/**
 * @file
 * Unit tests for src/util: PRNG, arena, printer, logging plumbing.
 */

#include <gtest/gtest.h>

#include <set>

#include "util/arena.hh"
#include "util/logging.hh"
#include "util/pagemap.hh"
#include "util/printer.hh"
#include "util/random.hh"
#include "util/thread_pool.hh"
#include "util/timer.hh"

namespace dvp
{
namespace
{

TEST(Rng, DeterministicForSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    std::set<int64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        int64_t v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u); // all values hit
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceRespectsBias)
{
    Rng rng(13);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.chance(0.25) ? 1 : 0;
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(Rng, StringHasRequestedLength)
{
    Rng rng(17);
    std::string s = rng.string(32);
    EXPECT_EQ(s.size(), 32u);
    for (char c : s)
        EXPECT_TRUE(c >= 'a' && c <= 'z');
}

TEST(Rng, ShufflePreservesElements)
{
    Rng rng(19);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    std::vector<int> orig = v;
    rng.shuffle(v);
    std::multiset<int> a(v.begin(), v.end());
    std::multiset<int> b(orig.begin(), orig.end());
    EXPECT_EQ(a, b);
}

TEST(Arena, PageAlignmentWithShift)
{
    Arena arena;
    for (int i = 0; i < 70; ++i) {
        size_t expect_shift =
            (i % (kPageSize / kCacheLineSize)) * kCacheLineSize;
        AlignedBuffer buf = arena.allocate(256);
        auto addr = reinterpret_cast<uintptr_t>(buf.data());
        EXPECT_EQ(addr % kPageSize, expect_shift)
            << "allocation " << i;
    }
}

TEST(Arena, ShiftRotatesThroughAllCacheLines)
{
    Arena arena;
    std::set<size_t> shifts;
    for (size_t i = 0; i < kPageSize / kCacheLineSize; ++i)
        shifts.insert(arena.allocate(64).shift());
    EXPECT_EQ(shifts.size(), kPageSize / kCacheLineSize);
}

TEST(Arena, BuffersAreZeroed)
{
    Arena arena;
    AlignedBuffer buf = arena.allocate(4096);
    for (size_t i = 0; i < buf.size(); ++i)
        ASSERT_EQ(buf.data()[i], 0u);
}

TEST(Arena, TracksAllocatedBytes)
{
    Arena arena;
    arena.allocate(100);
    arena.allocate(200);
    EXPECT_EQ(arena.allocatedBytes(), 300u);
}

TEST(AlignedBuffer, MoveTransfersOwnership)
{
    Arena arena;
    AlignedBuffer a = arena.allocate(128);
    uint8_t *p = a.data();
    AlignedBuffer b = std::move(a);
    EXPECT_EQ(b.data(), p);
    EXPECT_TRUE(b.valid());
}

TEST(Printer, AsciiAlignsColumns)
{
    TablePrinter t({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer", "22"});
    std::string out = t.ascii();
    EXPECT_NE(out.find("| name   | value |"), std::string::npos);
    EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
}

TEST(Printer, CsvQuotesCommas)
{
    TablePrinter t({"a"});
    t.addRow({"x,y"});
    EXPECT_NE(t.csv().find("\"x,y\""), std::string::npos);
}

TEST(Printer, CsvEscapesQuotes)
{
    TablePrinter t({"a"});
    t.addRow({"say \"hi\""});
    EXPECT_NE(t.csv().find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Printer, FmtHelpers)
{
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmt(2.0, 0), "2");
    EXPECT_EQ(fmtCount(0), "0");
    EXPECT_EQ(fmtCount(999), "999");
    EXPECT_EQ(fmtCount(1000), "1,000");
    EXPECT_EQ(fmtCount(1234567), "1,234,567");
    EXPECT_EQ(fmtMB(1024 * 1024), "1.00");
    EXPECT_EQ(fmtMB(1536 * 1024), "1.50");
}

TEST(Logging, LevelGate)
{
    LogLevel old = logLevel();
    setLogLevel(LogLevel::Silent);
    EXPECT_EQ(logLevel(), LogLevel::Silent);
    // warn/inform must be safe to call while silenced.
    warn("suppressed %d", 1);
    inform("suppressed %s", "too");
    setLogLevel(old);
}

TEST(Logging, InvariantPassesOnTrue)
{
    invariant(true, "never fires");
    SUCCEED();
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 42), "boom 42");
}

TEST(LoggingDeath, InvariantAbortsOnFalse)
{
    EXPECT_DEATH(invariant(false, "broken"), "broken");
}

TEST(PageMap, RangeMembership)
{
    PageMap &pm = PageMap::instance();
    size_t before = pm.size();
    pm.add(0x40000000, 0x1000);
    EXPECT_TRUE(pm.isHuge(0x40000000));
    EXPECT_TRUE(pm.isHuge(0x40000fff));
    EXPECT_FALSE(pm.isHuge(0x40001000));
    EXPECT_FALSE(pm.isHuge(0x3fffffff));
    pm.remove(0x40000000);
    EXPECT_FALSE(pm.isHuge(0x40000000));
    EXPECT_EQ(pm.size(), before);
}

TEST(PageMap, MultipleRangesIndependent)
{
    PageMap &pm = PageMap::instance();
    pm.add(0x10000000, 0x100);
    pm.add(0x20000000, 0x100);
    EXPECT_TRUE(pm.isHuge(0x10000050));
    EXPECT_TRUE(pm.isHuge(0x20000050));
    EXPECT_FALSE(pm.isHuge(0x18000000));
    pm.remove(0x10000000);
    EXPECT_FALSE(pm.isHuge(0x10000050));
    EXPECT_TRUE(pm.isHuge(0x20000050));
    pm.remove(0x20000000);
}

TEST(Arena, LargeBuffersAreHugeRegistered)
{
    Arena arena;
    AlignedBuffer big = arena.allocate(4 * 1024 * 1024);
    EXPECT_TRUE(big.hugePaged());
    EXPECT_TRUE(PageMap::instance().isHuge(
        reinterpret_cast<uintptr_t>(big.data())));
    AlignedBuffer small = arena.allocate(4096);
    EXPECT_FALSE(small.hugePaged());
    EXPECT_FALSE(PageMap::instance().isHuge(
        reinterpret_cast<uintptr_t>(small.data())));
}

TEST(Arena, HugeRegistrationFollowsMoves)
{
    Arena arena;
    uintptr_t addr;
    {
        AlignedBuffer a = arena.allocate(2 * 1024 * 1024);
        addr = reinterpret_cast<uintptr_t>(a.data());
        AlignedBuffer b = std::move(a);
        EXPECT_TRUE(PageMap::instance().isHuge(addr));
        AlignedBuffer c;
        c = std::move(b);
        EXPECT_TRUE(PageMap::instance().isHuge(addr));
    } // destruction unregisters exactly once
    EXPECT_FALSE(PageMap::instance().isHuge(addr));
}

TEST(Timer, MeasuresElapsedTime)
{
    Timer t;
    double a = t.seconds();
    EXPECT_GE(a, 0.0);
    double b = t.seconds();
    EXPECT_GE(b, a);
    EXPECT_NEAR(t.milliseconds(), t.seconds() * 1e3, 1.0);
}

TEST(ThreadPool, RunsEveryMorselExactlyOnce)
{
    ThreadPool pool(3);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(hits.size(), 0, [&](size_t i, size_t) {
        hits[i].fetch_add(1);
    });
    for (size_t i = 0; i < hits.size(); ++i)
        ASSERT_EQ(hits[i].load(), 1) << "morsel " << i;
}

TEST(ThreadPool, LaneIdsStayWithinBounds)
{
    ThreadPool pool(3);
    std::atomic<size_t> bad{0};
    pool.parallelFor(500, 0, [&](size_t, size_t lane) {
        if (lane >= pool.laneCount())
            bad.fetch_add(1);
    });
    EXPECT_EQ(bad.load(), 0u);
}

TEST(ThreadPool, MaxLanesOneRunsInline)
{
    ThreadPool pool(3);
    std::thread::id caller = std::this_thread::get_id();
    std::atomic<int> off_thread{0};
    pool.parallelFor(64, 1, [&](size_t, size_t lane) {
        if (std::this_thread::get_id() != caller || lane != 0)
            off_thread.fetch_add(1);
    });
    EXPECT_EQ(off_thread.load(), 0);
}

TEST(ThreadPool, PerLaneScratchNeedsNoLocks)
{
    ThreadPool pool(3);
    std::vector<uint64_t> per_lane(pool.laneCount(), 0);
    pool.parallelFor(2000, 0, [&](size_t i, size_t lane) {
        per_lane[lane] += i + 1; // lane-exclusive, hence unsynchronized
    });
    uint64_t total = 0;
    for (uint64_t v : per_lane)
        total += v;
    EXPECT_EQ(total, 2000ull * 2001 / 2);
}

TEST(ThreadPool, ZeroMorselsReturnsImmediately)
{
    ThreadPool pool(2);
    bool ran = false;
    pool.parallelFor(0, 0, [&](size_t, size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPool, ConcurrentBatchesFromManyCallers)
{
    // Work stealing is shared across batches: several caller threads
    // submit simultaneously and every batch must still complete with
    // each morsel run exactly once.
    ThreadPool pool(3);
    constexpr int kCallers = 4;
    constexpr size_t kMorsels = 300;
    std::vector<std::thread> callers;
    std::vector<std::vector<std::atomic<int>>> hits(kCallers);
    for (auto &h : hits) {
        std::vector<std::atomic<int>> fresh(kMorsels);
        h.swap(fresh);
    }
    for (int c = 0; c < kCallers; ++c) {
        callers.emplace_back([&, c] {
            pool.parallelFor(kMorsels, 0, [&, c](size_t i, size_t) {
                hits[c][i].fetch_add(1);
            });
        });
    }
    for (auto &t : callers)
        t.join();
    for (int c = 0; c < kCallers; ++c)
        for (size_t i = 0; i < kMorsels; ++i)
            ASSERT_EQ(hits[c][i].load(), 1)
                << "caller " << c << " morsel " << i;
}

TEST(ThreadPool, SharedPoolHasAtLeastEightLanes)
{
    // Tests and the scaling bench sweep up to 8 lanes; the shared pool
    // guarantees they exist even on small machines.
    EXPECT_GE(ThreadPool::shared().laneCount(), 8u);
}

} // namespace
} // namespace dvp
