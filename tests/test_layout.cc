/**
 * @file
 * Unit tests for src/layout: constructors, migration, invariants.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "layout/layout.hh"
#include "util/random.hh"

namespace dvp::layout
{
namespace
{

std::vector<AttrId>
attrs(size_t n)
{
    std::vector<AttrId> v(n);
    for (size_t i = 0; i < n; ++i)
        v[i] = static_cast<AttrId>(i);
    return v;
}

TEST(Layout, RowBased)
{
    Layout l = Layout::rowBased(attrs(5));
    EXPECT_EQ(l.partitionCount(), 1u);
    EXPECT_EQ(l.attrCount(), 5u);
    for (AttrId a = 0; a < 5; ++a)
        EXPECT_EQ(l.partitionOf(a), 0u);
}

TEST(Layout, ColumnBased)
{
    Layout l = Layout::columnBased(attrs(5));
    EXPECT_EQ(l.partitionCount(), 5u);
    for (AttrId a = 0; a < 5; ++a)
        EXPECT_EQ(l.partition(l.partitionOf(a)).size(), 1u);
}

TEST(Layout, FixedSizeGroups)
{
    Layout l = Layout::fixedSize(attrs(10), 4);
    ASSERT_EQ(l.partitionCount(), 3u);
    EXPECT_EQ(l.partition(0).size(), 4u);
    EXPECT_EQ(l.partition(1).size(), 4u);
    EXPECT_EQ(l.partition(2).size(), 2u);
    EXPECT_EQ(l.attrCount(), 10u);
}

TEST(Layout, PartitionOfUnknownAttr)
{
    Layout l = Layout::rowBased(attrs(3));
    EXPECT_EQ(l.partitionOf(99), kNoPart);
}

TEST(Layout, MoveAttrBetweenPartitions)
{
    Layout l({{0, 1}, {2, 3}});
    l.moveAttr(1, 1);
    EXPECT_EQ(l.partitionOf(1), l.partitionOf(2));
    EXPECT_EQ(l.partitionCount(), 2u);
    EXPECT_EQ(l.attrCount(), 4u);
    l.validate();
}

TEST(Layout, MoveAttrToFreshPartition)
{
    Layout l({{0, 1, 2}});
    PartIdx p = l.moveAttr(2, 1); // index 1 == partitionCount() here
    EXPECT_EQ(l.partitionCount(), 2u);
    EXPECT_EQ(l.partitionOf(2), p);
    EXPECT_NE(l.partitionOf(2), l.partitionOf(0));
    l.validate();
}

TEST(Layout, MoveLastAttrErasesSourcePartition)
{
    Layout l({{0}, {1, 2}});
    l.moveAttr(0, 1);
    EXPECT_EQ(l.partitionCount(), 1u);
    EXPECT_EQ(l.attrCount(), 3u);
    l.validate();
}

TEST(Layout, MoveAttrNoOp)
{
    Layout l({{0, 1}, {2}});
    PartIdx before = l.partitionOf(0);
    EXPECT_EQ(l.moveAttr(0, before), before);
    EXPECT_EQ(l.partitionCount(), 2u);
}

TEST(Layout, EquivalenceIgnoresOrder)
{
    Layout a({{0, 1}, {2}});
    Layout b({{2}, {1, 0}});
    Layout c({{0}, {1, 2}});
    EXPECT_TRUE(a.equivalentTo(b));
    EXPECT_FALSE(a.equivalentTo(c));
}

TEST(Layout, AllAttrsCoversEverything)
{
    Layout l({{3, 1}, {0}, {2}});
    auto all = l.allAttrs();
    std::sort(all.begin(), all.end());
    EXPECT_EQ(all, (std::vector<AttrId>{0, 1, 2, 3}));
}

TEST(Layout, DescribeIsStable)
{
    Layout l({{0, 1}, {2}});
    EXPECT_EQ(l.describe(), "{0,1}{2}");
}

TEST(LayoutDeath, DuplicateAttributeRejected)
{
    EXPECT_DEATH(Layout({{0, 1}, {1}}), "two partitions");
}

TEST(LayoutDeath, EmptyPartitionRejected)
{
    EXPECT_DEATH(Layout({{0}, {}}), "empty partition");
}

// ---------------------------------------------------------------------
// fingerprint(): the plan cache's order-insensitive layout hash.
// ---------------------------------------------------------------------

/** Random partitioning of n attributes into at most k parts. */
Layout
randomLayout(Rng &rng, size_t n, size_t k)
{
    std::vector<std::vector<AttrId>> parts(1 + rng.below(k));
    for (size_t a = 0; a < n; ++a)
        parts[rng.below(parts.size())].push_back(
            static_cast<AttrId>(a));
    parts.erase(std::remove_if(parts.begin(), parts.end(),
                               [](const auto &p) { return p.empty(); }),
                parts.end());
    return Layout(std::move(parts));
}

/** The same partition sets, in scrambled partition and attr order. */
Layout
scrambled(const Layout &l, Rng &rng)
{
    std::vector<std::vector<AttrId>> parts = l.partitions();
    for (auto &p : parts)
        rng.shuffle(p);
    rng.shuffle(parts);
    return Layout(std::move(parts));
}

TEST(LayoutFingerprint, OrderInsensitive)
{
    Layout l({{0, 1, 2}, {3}, {4, 5}});
    Layout reordered({{5, 4}, {2, 0, 1}, {3}});
    ASSERT_TRUE(l.equivalentTo(reordered));
    EXPECT_EQ(l.fingerprint(), reordered.fingerprint());
}

TEST(LayoutFingerprint, DistinguishesGrouping)
{
    // Same attributes, different grouping: sum-based hashes are an
    // easy way to get this wrong ({0,1}{2} vs {0}{1,2}).
    Layout a({{0, 1}, {2}});
    Layout b({{0}, {1, 2}});
    ASSERT_FALSE(a.equivalentTo(b));
    EXPECT_NE(a.fingerprint(), b.fingerprint());
    EXPECT_NE(Layout::rowBased(attrs(6)).fingerprint(),
              Layout::columnBased(attrs(6)).fingerprint());
}

TEST(LayoutFingerprint, RandomizedEquivalenceIff)
{
    // Property: equivalentTo(a, b) <=> fingerprint(a) == fingerprint(b)
    // over random layouts, their scrambled copies, and random
    // single-move mutations.
    Rng rng(20260805);
    for (int round = 0; round < 200; ++round) {
        size_t n = 2 + rng.below(40);
        Layout l = randomLayout(rng, n, 8);

        // Scrambling partition/attr order never changes the print.
        Layout same = scrambled(l, rng);
        ASSERT_TRUE(l.equivalentTo(same));
        EXPECT_EQ(l.fingerprint(), same.fingerprint());

        // Moving one attribute somewhere else always changes it.
        Layout moved = l;
        auto a = static_cast<AttrId>(rng.below(n));
        auto target = static_cast<PartIdx>(
            rng.below(moved.partitionCount() + 1));
        if (target == moved.partitionOf(a))
            continue;
        if (target == moved.partitionCount() &&
            moved.partition(moved.partitionOf(a)).size() == 1)
            continue; // singleton to fresh partition: no-op
        moved.moveAttr(a, target);
        ASSERT_FALSE(l.equivalentTo(moved));
        EXPECT_NE(l.fingerprint(), moved.fingerprint());
        EXPECT_EQ(moved.fingerprint(), scrambled(moved, rng)
                                           .fingerprint());
    }
}

TEST(Layout, RandomMoveSequenceKeepsInvariant)
{
    // Property: any sequence of moveAttr calls preserves the exact-
    // coverage invariant (each attribute in exactly one partition).
    Rng rng(77);
    Layout l = Layout::fixedSize(attrs(20), 5);
    for (int step = 0; step < 300; ++step) {
        auto a = static_cast<AttrId>(rng.below(20));
        auto target = static_cast<PartIdx>(
            rng.below(l.partitionCount() + 1));
        if (target == l.partitionCount() &&
            l.partition(l.partitionOf(a)).size() == 1)
            continue; // singleton to fresh partition is a no-op move
        l.moveAttr(a, target);
        l.validate();
        EXPECT_EQ(l.attrCount(), 20u);
    }
}

} // namespace
} // namespace dvp::layout
