/**
 * @file
 * Tests for the observability layer (src/obs): histogram bucket math
 * and quantile accuracy against an exact reference, concurrent counter
 * merge determinism, span ring overflow and parent/child nesting,
 * exporter goldens, byte-identical Prometheus dumps for fixed-seed
 * serial runs, and span/AdaptationStats agreement on the adaptive
 * engine.  test_obs_disabled.cc (compiled into this binary with
 * DVP_OBS_DISABLED) verifies the macros are true no-ops there.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "adaptive/adaptive_engine.hh"
#include "engine/database.hh"
#include "engine/executor.hh"
#include "nobench/generator.hh"
#include "nobench/queries.hh"
#include "nobench/workload.hh"
#include "obs/export.hh"

namespace dvp::obs
{

// Implemented in test_obs_disabled.cc, compiled with DVP_OBS_DISABLED.
namespace testing
{
void recordDisabledMetrics();
} // namespace testing

namespace
{

// ---------------------------------------------------------------------
// Histogram.
// ---------------------------------------------------------------------

TEST(Histogram, BucketMath)
{
    EXPECT_EQ(Histogram::bucketOf(0), 0u);
    EXPECT_EQ(Histogram::bucketOf(1), 1u);
    EXPECT_EQ(Histogram::bucketOf(2), 2u);
    EXPECT_EQ(Histogram::bucketOf(3), 2u);
    EXPECT_EQ(Histogram::bucketOf(4), 3u);
    EXPECT_EQ(Histogram::bucketOf(UINT64_MAX), 64u);

    EXPECT_EQ(Histogram::bucketBound(0), 0u);
    EXPECT_EQ(Histogram::bucketBound(1), 1u);
    EXPECT_EQ(Histogram::bucketBound(2), 3u);
    EXPECT_EQ(Histogram::bucketBound(10), 1023u);
    EXPECT_EQ(Histogram::bucketBound(64), UINT64_MAX);

    // Every sample lands in the bucket whose range contains it.
    for (uint64_t s : {1ull, 2ull, 3ull, 63ull, 64ull, 12345ull}) {
        size_t b = Histogram::bucketOf(s);
        EXPECT_LE(s, Histogram::bucketBound(b));
        EXPECT_GT(s, Histogram::bucketBound(b - 1));
    }
}

TEST(Histogram, QuantilesWithinTwoXOfExactReference)
{
    Histogram h;
    std::vector<uint64_t> samples;
    uint64_t x = 88172645463325252ull; // xorshift64
    for (int i = 0; i < 4000; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        samples.push_back(x % 1000000 + 1);
        h.observe(samples.back());
    }
    std::vector<uint64_t> sorted = samples;
    std::sort(sorted.begin(), sorted.end());

    for (double q : {0.50, 0.90, 0.95, 0.99}) {
        uint64_t exact =
            sorted[static_cast<size_t>(q * sorted.size())];
        uint64_t approx = h.quantile(q);
        // The log2 bucket bound brackets the order statistic within 2x.
        EXPECT_GE(approx, exact) << "q=" << q;
        EXPECT_LT(approx, 2 * exact) << "q=" << q;
    }
    EXPECT_EQ(h.quantile(1.0), sorted.back());
    EXPECT_EQ(h.maxValue(), sorted.back());
    EXPECT_EQ(h.count(), samples.size());

    Histogram empty;
    EXPECT_EQ(empty.quantile(0.5), 0u);
}

// ---------------------------------------------------------------------
// Concurrent updates.
// ---------------------------------------------------------------------

TEST(Counter, ConcurrentAddsMergeDeterministically)
{
    for (size_t nthreads : {1u, 2u, 4u, 8u}) {
        Registry reg;
        Counter &c = reg.counter("t_total");
        Histogram &h = reg.histogram("t_hist");
        const uint64_t per_thread = 40000 / nthreads;
        std::vector<std::thread> threads;
        for (size_t t = 0; t < nthreads; ++t) {
            threads.emplace_back([&, t] {
                for (uint64_t i = 0; i < per_thread; ++i) {
                    c.add(t + 1);
                    h.observe(i % 1024);
                }
            });
        }
        for (auto &th : threads)
            th.join();
        uint64_t expected = 0;
        for (size_t t = 0; t < nthreads; ++t)
            expected += (t + 1) * per_thread;
        EXPECT_EQ(c.value(), expected) << nthreads << " threads";
        EXPECT_EQ(h.count(), per_thread * nthreads);
    }
}

TEST(Registry, HandlesStableAcrossReset)
{
    Registry reg;
    Counter &a = reg.counter("x_total");
    a.add(5);
    Gauge &g = reg.gauge("x_gauge");
    g.set(7);
    reg.reset();
    EXPECT_EQ(a.value(), 0u);
    EXPECT_EQ(g.value(), 0);
    EXPECT_TRUE(reg.contains("x_total"));
    EXPECT_EQ(&reg.counter("x_total"), &a); // same slot, still valid
    EXPECT_EQ(reg.size(), 2u);
}

TEST(Gauge, HighWaterOnlyRaises)
{
    Gauge g;
    g.high(5);
    g.high(3);
    EXPECT_EQ(g.value(), 5);
    g.high(9);
    EXPECT_EQ(g.value(), 9);
}

// ---------------------------------------------------------------------
// Tracer.
// ---------------------------------------------------------------------

TEST(Tracer, RingOverflowKeepsNewestAndCountsDropped)
{
    Tracer t;
    t.enable(/*capacity=*/8);
    for (int i = 0; i < 20; ++i) {
        uint64_t id = t.beginSpan();
        t.endSpan(id, 0, Tracer::nowNs(), "tick", "");
    }
    EXPECT_EQ(t.recorded(), 20u);
    EXPECT_EQ(t.dropped(), 12u);
    std::vector<SpanRecord> spans = t.snapshot();
    ASSERT_EQ(spans.size(), 8u);
    // Oldest-first, and the survivors are the 8 newest ids (13..20).
    EXPECT_EQ(spans.front().id, 13u);
    EXPECT_EQ(spans.back().id, 20u);
    for (size_t i = 1; i < spans.size(); ++i)
        EXPECT_GT(spans[i].id, spans[i - 1].id);

    t.clear();
    EXPECT_TRUE(t.snapshot().empty());
    EXPECT_EQ(t.dropped(), 0u);
}

TEST(Tracer, SpanVolumeReachesTheCounterRegistry)
{
    // Satellite counters: every committed span bumps
    // dvp_trace_spans_total, every overwrite bumps
    // dvp_trace_dropped_total — so a Prometheus scrape can watch span
    // volume and ring pressure without pulling the trace dump.
    auto &reg = Registry::global();
    uint64_t spans0 = reg.counter("dvp_trace_spans_total").value();
    uint64_t dropped0 = reg.counter("dvp_trace_dropped_total").value();

    Tracer t;
    t.enable(/*capacity=*/4);
    for (int i = 0; i < 10; ++i) {
        uint64_t id = t.beginSpan();
        t.endSpan(id, 0, Tracer::nowNs(), "tick", "");
    }

    EXPECT_EQ(reg.counter("dvp_trace_spans_total").value() - spans0,
              10u);
    EXPECT_EQ(reg.counter("dvp_trace_dropped_total").value() -
                  dropped0,
              6u);
}

TEST(Tracer, SpanNestingRecordsParentChild)
{
    Tracer &t = Tracer::global();
    t.clear();
    t.enable();
    {
        Span outer("outer", "o");
        {
            Span inner("inner", "i");
        }
    }
    t.disable();
    std::vector<SpanRecord> spans = t.snapshot();
    ASSERT_EQ(spans.size(), 2u);
    // Inner completes (and commits) first.
    EXPECT_STREQ(spans[0].name, "inner");
    EXPECT_STREQ(spans[1].name, "outer");
    EXPECT_EQ(spans[1].parent, 0u);
    EXPECT_EQ(spans[0].parent, spans[1].id);
    EXPECT_STREQ(spans[0].detail, "i");
    EXPECT_GE(spans[0].startNs, spans[1].startNs);
    EXPECT_LE(spans[0].endNs, spans[1].endNs);
    t.clear();
}

TEST(Tracer, DisabledSpanCostsNothingAndRecordsNothing)
{
    Tracer &t = Tracer::global();
    t.clear();
    ASSERT_FALSE(t.enabled());
    {
        Span s("ghost", "never recorded");
        EXPECT_FALSE(s.active());
    }
    EXPECT_EQ(t.recorded(), 0u);
}

// ---------------------------------------------------------------------
// Exporters.
// ---------------------------------------------------------------------

Registry &
goldenRegistry()
{
    static Registry reg; // not movable (mutex): populate in place
    static bool init = [] {
        reg.counter("t_events_total").add(3);
        reg.gauge("t_depth").set(-5);
        Histogram &h = reg.histogram("t_lat{op=\"x\"}");
        h.observe(1);
        h.observe(2);
        h.observe(3);
        return true;
    }();
    (void)init;
    return reg;
}

TEST(Exporters, PrometheusGolden)
{
    const char *expected = "# TYPE t_events_total counter\n"
                           "t_events_total 3\n"
                           "# TYPE t_depth gauge\n"
                           "t_depth -5\n"
                           "# TYPE t_lat histogram\n"
                           "t_lat{op=\"x\",le=\"1\"} 1\n"
                           "t_lat{op=\"x\",le=\"3\"} 3\n"
                           "t_lat{op=\"x\",le=\"+Inf\"} 3\n"
                           "t_lat_sum{op=\"x\"} 6\n"
                           "t_lat_count{op=\"x\"} 3\n"
                           "t_lat_max{op=\"x\"} 3\n";
    EXPECT_EQ(exportPrometheus(goldenRegistry()), expected);
}

TEST(Exporters, PrometheusFilterDropsMetrics)
{
    std::string text =
        exportPrometheus(goldenRegistry(), [](const std::string &n) {
            return n.find("t_depth") == std::string::npos;
        });
    EXPECT_EQ(text.find("t_depth"), std::string::npos);
    EXPECT_NE(text.find("t_events_total 3"), std::string::npos);
}

TEST(Exporters, MetricsNdjsonGolden)
{
    std::string text = exportMetricsNdjson(goldenRegistry());
    EXPECT_NE(
        text.find(
            R"({"type":"counter","name":"t_events_total","value":3})"),
        std::string::npos);
    EXPECT_NE(text.find(R"({"type":"gauge","name":"t_depth","value":-5})"),
              std::string::npos);
    // Histogram record: name JSON-escaped, quantiles within 2x.
    EXPECT_NE(text.find(R"("name":"t_lat{op=\"x\"}")"),
              std::string::npos);
    EXPECT_NE(text.find(R"("count":3,"sum":6)"), std::string::npos);
    EXPECT_NE(text.find(R"("max":3})"), std::string::npos);
}

TEST(Exporters, TraceNdjsonCarriesSpansAndSummary)
{
    Tracer t;
    t.enable(16);
    uint64_t id = t.beginSpan();
    t.endSpan(id, 0, Tracer::nowNs(), "phase", "det\"ail");
    std::string text = exportTraceNdjson(t);
    EXPECT_NE(text.find(R"("name":"phase")"), std::string::npos);
    EXPECT_NE(text.find(R"("detail":"det\"ail")"), std::string::npos);
    EXPECT_NE(
        text.find(R"({"type":"trace_summary","recorded":1,"dropped":0})"),
        std::string::npos);
}

TEST(Exporters, AsciiSnapshotListsEveryMetric)
{
    std::string text = asciiSnapshot(goldenRegistry());
    EXPECT_NE(text.find("t_events_total"), std::string::npos);
    EXPECT_NE(text.find("t_depth"), std::string::npos);
    EXPECT_NE(text.find("t_lat"), std::string::npos);
}

// ---------------------------------------------------------------------
// DVP_OBS_DISABLED (the other translation unit of this binary).
// ---------------------------------------------------------------------

TEST(Disabled, MacrosRegisterNothing)
{
    size_t before = Registry::global().size();
    uint64_t recorded = Tracer::global().recorded();
    testing::recordDisabledMetrics();
    EXPECT_EQ(Registry::global().size(), before);
    EXPECT_EQ(Tracer::global().recorded(), recorded);
    EXPECT_FALSE(Registry::global().contains("dvp_test_disabled_total"));
    EXPECT_FALSE(Registry::global().contains("dvp_test_disabled_gauge"));
    EXPECT_FALSE(Registry::global().contains("dvp_test_disabled_ns"));
}

// ---------------------------------------------------------------------
// Engine integration.
// ---------------------------------------------------------------------

// The engine-integration tests assert instrumentation that a
// -DDVP_OBS=OFF build compiles out; everything above (registry,
// tracer, exporter classes) stays testable in both modes.
#ifndef DVP_OBS_DISABLED

struct ObsWorld
{
    nobench::Config cfg;
    engine::DataSet data;
    std::unique_ptr<nobench::QuerySet> qs;

    explicit ObsWorld(uint64_t docs = 800)
    {
        cfg.numDocs = docs;
        cfg.seed = 77;
        data = nobench::generateDataSet(cfg);
        qs = std::make_unique<nobench::QuerySet>(data, cfg);
    }
};

TEST(EngineObs, CounterMergeDeterministicAcrossThreadCounts)
{
    ObsWorld w;
    engine::Database db(
        w.data, layout::Layout::rowBased(w.data.catalog.allAttrs()),
        "row");
    Rng rng(5);
    engine::Query q = w.qs->instantiate(nobench::kQ1, rng);

    const std::string rows_key =
        "dvp_rows_scanned_total{layout=\"row\"}";
    const std::string touch_key =
        "dvp_partition_touches_total{layout=\"row\"}";
    std::vector<uint64_t> rows_seen, touches_seen;
    for (size_t nthreads : {1u, 2u, 4u, 8u}) {
        Registry::global().reset();
        engine::Executor exec(db, nthreads);
        exec.run(q);
        rows_seen.push_back(
            Registry::global().counter(rows_key).value());
        touches_seen.push_back(
            Registry::global().counter(touch_key).value());
    }
    for (size_t i = 1; i < rows_seen.size(); ++i) {
        EXPECT_EQ(rows_seen[i], rows_seen[0]) << "run " << i;
        EXPECT_EQ(touches_seen[i], touches_seen[0]) << "run " << i;
    }
    EXPECT_GT(rows_seen[0], 0u);
}

TEST(EngineObs, SerialFixedSeedPrometheusByteIdentical)
{
    ObsWorld w;
    engine::Database db(
        w.data, layout::Layout::rowBased(w.data.catalog.allAttrs()),
        "row");
    // Wall-clock histograms legitimately differ between runs; every
    // other metric must reproduce exactly for a fixed-seed serial run.
    MetricFilter no_wallclock = [](const std::string &name) {
        return name.find("_ns") == std::string::npos;
    };
    auto run_once = [&] {
        Registry::global().reset();
        Rng rng(6);
        engine::Executor exec(db);
        for (int t = 0; t < nobench::kNumTemplates; ++t)
            exec.run(w.qs->instantiate(t, rng));
        return exportPrometheus(Registry::global(), no_wallclock);
    };
    std::string first = run_once();
    std::string second = run_once();
    EXPECT_EQ(first, second);
    EXPECT_NE(first.find("dvp_queries_total"), std::string::npos);
    EXPECT_NE(first.find("dvp_rows_scanned_total{layout=\"row\"}"),
              std::string::npos);
}

TEST(AdaptiveObs, SpansRecoverRepartitionCountAndDuration)
{
    ObsWorld w(1200);
    Rng rng(7);
    std::vector<engine::Query> initial = nobench::representatives(
        *w.qs, nobench::Mix::uniform(), rng);

    adaptive::Params prm;
    prm.background = false;
    prm.window = 40;
    prm.changeThreshold = 0.4;
    adaptive::AdaptiveEngine eng(w.data, initial, prm);

    Tracer &tracer = Tracer::global();
    tracer.clear();
    tracer.enable();
    for (int i = 0; i < 60; ++i)
        eng.execute(w.qs->instantiate(i % nobench::kNumTemplates, rng));
    for (int i = 0; i < 120; ++i)
        eng.execute(
            w.qs->instantiateShifted(i % nobench::kNumTemplates, rng));
    tracer.disable();

    const adaptive::AdaptationStats &st = eng.adaptation();
    ASSERT_GE(st.repartitions.load(), 1u);

    uint64_t repartition_spans = 0, change_spans = 0;
    uint64_t partitioner_spans = 0, swap_spans = 0;
    uint64_t last_repartition_ns = 0, last_repartition_id = 0;
    uint64_t nested_in_last = 0;
    for (const SpanRecord &s : tracer.snapshot()) {
        if (std::string(s.name) == "repartition") {
            ++repartition_spans;
            last_repartition_ns = s.durationNs();
            last_repartition_id = s.id;
        } else if (std::string(s.name) == "change_detected") {
            ++change_spans;
        } else if (std::string(s.name) == "partitioner") {
            ++partitioner_spans;
        } else if (std::string(s.name) == "swap") {
            ++swap_spans;
        }
    }
    for (const SpanRecord &s : tracer.snapshot())
        if (s.parent == last_repartition_id)
            ++nested_in_last;

    // Span counts match the engine's own accounting.
    EXPECT_EQ(repartition_spans, st.repartitions.load());
    EXPECT_EQ(partitioner_spans, st.repartitions.load());
    EXPECT_EQ(swap_spans, st.repartitions.load());
    EXPECT_GE(change_spans, st.changesDetected.load());
    EXPECT_GE(nested_in_last, 2u); // partitioner + build + swap

    // The span brackets the engine's measured duration: it opens just
    // before the timer and closes just after the stats update.
    double span_s = static_cast<double>(last_repartition_ns) / 1e9;
    double stat_s = st.lastRepartitionSeconds.load();
    EXPECT_GE(span_s, stat_s * 0.9);
    EXPECT_LE(span_s, stat_s * 1.5 + 0.05);
    tracer.clear();
}

#endif // DVP_OBS_DISABLED

TEST(DumpScope, WritesMetricsAndTraceFiles)
{
    std::string dir = ::testing::TempDir();
    std::string mpath = dir + "/obs_metrics.prom";
    std::string tpath = dir + "/obs_trace.ndjson";
    // Direct registry API (not the macros) so this holds under
    // DVP_OBS_DISABLED builds too.
    Registry::global().counter("dvp_test_dumpscope_total").add(1);
    {
        DumpScope scope(mpath, tpath);
        EXPECT_TRUE(Tracer::global().enabled()); // armed by trace path
        Span s("dumped", "");
    }
    Tracer::global().disable();
    Tracer::global().clear();

    auto slurp = [](const std::string &path) {
        std::FILE *f = std::fopen(path.c_str(), "r");
        EXPECT_NE(f, nullptr) << path;
        std::string text;
        char buf[4096];
        size_t n;
        while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
            text.append(buf, n);
        std::fclose(f);
        return text;
    };
    EXPECT_NE(slurp(mpath).find("dvp_test_dumpscope_total"),
              std::string::npos);
    EXPECT_NE(slurp(tpath).find(R"("name":"dumped")"),
              std::string::npos);
}

} // namespace
} // namespace dvp::obs
