/**
 * @file
 * Cross-system integration tests: all six engines of the paper's
 * evaluation (row, column, DVP, Hyrise, Argo1, Argo3) over one NoBench
 * data set — result equality everywhere, Table IV relational facts,
 * and end-to-end perf-simulation sanity.
 */

#include <gtest/gtest.h>

#include "adaptive/adaptive_engine.hh"
#include "argo/argo_executor.hh"
#include "argo/argo_store.hh"
#include "dvp/partitioner.hh"
#include "engine/database.hh"
#include "json/parser.hh"
#include "engine/executor.hh"
#include "hyrise/hyrise_layouter.hh"
#include "nobench/generator.hh"
#include "nobench/queries.hh"
#include "nobench/workload.hh"
#include "perf/memory_hierarchy.hh"

namespace dvp
{
namespace
{

using engine::Query;
using engine::ResultSet;
using layout::Layout;

/** One shared world with all six engines. */
struct World
{
    nobench::Config cfg;
    engine::DataSet data;
    std::vector<Query> queries;

    std::unique_ptr<engine::Database> row;
    std::unique_ptr<engine::Database> col;
    std::unique_ptr<engine::Database> dvp;
    std::unique_ptr<engine::Database> hyrise;
    std::unique_ptr<argo::ArgoStore> argo1;
    std::unique_ptr<argo::ArgoStore> argo3;

    World()
    {
        cfg.numDocs = 1200;
        cfg.seed = 2718;
        data = nobench::generateDataSet(cfg);

        nobench::QuerySet qs(data, cfg);
        Rng rng(161803);
        for (int t = 0; t < nobench::kNumTemplates; ++t)
            queries.push_back(qs.instantiate(t, rng));

        std::vector<Query> reps = nobench::representatives(
            qs, nobench::Mix::uniform(), rng);

        auto attrs = data.catalog.allAttrs();
        row = std::make_unique<engine::Database>(
            data, Layout::rowBased(attrs), "row");
        col = std::make_unique<engine::Database>(
            data, Layout::columnBased(attrs), "col");

        core::Partitioner partitioner(data, reps);
        dvp = std::make_unique<engine::Database>(
            data, partitioner.run().layout, "DVP");

        hyrise::HyriseLayouter hl(data.catalog, reps,
                                  data.docs.size());
        auto hres = hl.run();
        hyrise = std::make_unique<engine::Database>(
            data, *hres.layout, "Hyrise");

        argo1 = std::make_unique<argo::ArgoStore>(
            data, argo::Variant::Argo1);
        argo3 = std::make_unique<argo::ArgoStore>(
            data, argo::Variant::Argo3);
    }
};

World &
world()
{
    static World w;
    return w;
}

class SixEngines : public ::testing::TestWithParam<int>
{
};

TEST_P(SixEngines, AllEnginesAgree)
{
    World &w = world();
    const Query &q = w.queries[GetParam()];

    engine::Executor row_exec(*w.row);
    ResultSet ref = row_exec.run(q);

    engine::Executor col_exec(*w.col);
    EXPECT_TRUE(col_exec.run(q).equals(ref)) << "column";
    engine::Executor dvp_exec(*w.dvp);
    EXPECT_TRUE(dvp_exec.run(q).equals(ref)) << "DVP";
    engine::Executor hy_exec(*w.hyrise);
    EXPECT_TRUE(hy_exec.run(q).equals(ref)) << "Hyrise";
    argo::ArgoExecutor a1_exec(*w.argo1);
    EXPECT_TRUE(a1_exec.run(q).equals(ref)) << "Argo1";
    argo::ArgoExecutor a3_exec(*w.argo3);
    EXPECT_TRUE(a3_exec.run(q).equals(ref)) << "Argo3";
}

INSTANTIATE_TEST_SUITE_P(
    AllQueries, SixEngines,
    ::testing::Range(0, static_cast<int>(nobench::kNumTemplates)),
    [](const auto &info) {
        return "Q" + std::to_string(info.param + 1);
    });

TEST(TableIV, RelationalFactsHold)
{
    World &w = world();

    // Table counts: row 1, column 1019, Hyrise ~11, DVP ~109.
    EXPECT_EQ(w.row->tableCount(), 1u);
    EXPECT_EQ(w.col->tableCount(), 1019u);
    EXPECT_GE(w.hyrise->tableCount(), 8u);
    EXPECT_LE(w.hyrise->tableCount(), 14u);
    EXPECT_GE(w.dvp->tableCount(), 90u);
    EXPECT_LE(w.dvp->tableCount(), 130u);
    EXPECT_EQ(w.argo1->tableCount(), 1u);
    EXPECT_EQ(w.argo3->tableCount(), 3u);

    // NULL ordering: row ~ Hyrise >> DVP; column and Argo3 store none.
    EXPECT_GT(w.row->nullBytes(), 100 * w.dvp->nullBytes() + 1);
    EXPECT_GT(w.hyrise->nullBytes(), 10 * w.dvp->nullBytes());
    EXPECT_EQ(w.col->nullCells(), 0u);
    EXPECT_EQ(w.argo3->nullCells(), 0u);
    EXPECT_GT(w.argo1->nullCells(), 0u);

    // Size ordering (paper Table IV): DVP smallest, row/Hyrise
    // largest, column compact.
    EXPECT_LT(w.dvp->storageBytes(), w.col->storageBytes());
    EXPECT_LT(w.col->storageBytes(), w.row->storageBytes() / 5);
    EXPECT_LT(w.dvp->storageBytes(), w.argo3->storageBytes());
    EXPECT_LT(w.dvp->storageBytes(), w.hyrise->storageBytes() / 10);

    // Argo1 nulls are exactly 40% of its cells.
    const argo::ArgoTable &t = w.argo1->table(0);
    EXPECT_EQ(w.argo1->nullCells() * 10, t.rows() * t.width() * 4);
}

TEST(PerfSimulation, DvpBeatsRowOnProjectionMisses)
{
    World &w = world();
    perf::MemoryHierarchy mh_row, mh_dvp;
    engine::Executor row_exec(*w.row);
    engine::Executor dvp_exec(*w.dvp);
    const Query &q1 = w.queries[nobench::kQ1];
    row_exec.run(q1, mh_row);
    dvp_exec.run(q1, mh_dvp);
    // Q1 projects two co-located attributes: the row layout drags the
    // whole 1020-slot record through the cache (the DVP partition may
    // legitimately carry a couple of join-affine attributes, so the
    // gap at this small scale is ~2-3x; the bench reproduces the full
    // paper-scale gap).
    EXPECT_LT(mh_dvp.counters().l1Misses * 2,
              mh_row.counters().l1Misses);
}

TEST(PerfSimulation, ColumnWorstTlbOnSelectStar)
{
    World &w = world();
    perf::MemoryHierarchy mh_col, mh_dvp, mh_row;
    engine::Executor col_exec(*w.col);
    engine::Executor dvp_exec(*w.dvp);
    engine::Executor row_exec(*w.row);
    // Q5 selects exactly one record via SELECT *: the column layout
    // must visit all 1019 tables to rebuild it (paper Fig. 7).
    const Query &q5 = w.queries[nobench::kQ5];
    col_exec.run(q5, mh_col);
    dvp_exec.run(q5, mh_dvp);
    row_exec.run(q5, mh_row);
    EXPECT_GT(mh_col.counters().tlbMisses,
              2 * mh_dvp.counters().tlbMisses);
    EXPECT_GT(mh_col.counters().tlbMisses,
              5 * mh_row.counters().tlbMisses);
}

TEST(EndToEnd, BulkInsertReachesAllSixEngines)
{
    // Fresh, small world so inserts do not disturb the shared one.
    nobench::Config cfg;
    cfg.numDocs = 200;
    cfg.seed = 13;
    engine::DataSet data = nobench::generateDataSet(cfg);
    auto attrs = data.catalog.allAttrs();
    engine::Database row(data, Layout::rowBased(attrs), "row");
    argo::ArgoStore a3(data, argo::Variant::Argo3);

    Rng rng(14);
    nobench::appendDocs(cfg, data, rng, 10);
    std::vector<storage::Document> payload(data.docs.end() - 10,
                                           data.docs.end());
    nobench::QuerySet qs(data, cfg);
    Query q12 = qs.insertQuery(&payload);

    engine::Executor row_exec(row);
    row_exec.run(q12);
    argo::ArgoExecutor a3_exec(a3);
    a3_exec.run(q12);

    Query probe;
    probe.kind = engine::QueryKind::Select;
    probe.projected = {data.catalog.find("num")};
    probe.cond.op = engine::CondOp::Eq;
    probe.cond.attr = data.catalog.find("id");
    probe.cond.lo = 205;
    ResultSet a = row_exec.run(probe);
    ResultSet b = a3_exec.run(probe);
    ASSERT_EQ(a.rowCount(), 1u);
    EXPECT_TRUE(a.equals(b));
}

TEST(EndToEnd, JsonTextPipeline)
{
    // Full pipeline: JSON text -> parse -> DataSet -> engines agree.
    nobench::Config cfg;
    cfg.numDocs = 120;
    cfg.seed = 21;
    std::string text = nobench::generateJsonLines(cfg, cfg.numDocs);
    std::string err;
    auto docs = json::parseLines(text, &err);
    ASSERT_EQ(docs.size(), cfg.numDocs) << err;

    engine::DataSet data;
    nobench::registerCatalog(data.catalog);
    for (const auto &doc : docs)
        data.addObject(doc);

    auto attrs = data.catalog.allAttrs();
    engine::Database row(data, Layout::rowBased(attrs), "row");
    engine::Database col(data, Layout::columnBased(attrs), "col");
    nobench::QuerySet qs(data, cfg);
    Rng rng(22);
    for (int t = 0; t < nobench::kNumTemplates; ++t) {
        Query q = qs.instantiate(t, rng);
        engine::Executor re(row), ce(col);
        EXPECT_TRUE(re.run(q).equals(ce.run(q))) << q.name;
    }
}

} // namespace
} // namespace dvp
