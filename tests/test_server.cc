/**
 * @file
 * Tests for the network query-serving subsystem: the wire protocol
 * (src/net), the TCP server (src/server), and the client library
 * (src/client).
 *
 * The protocol tests exercise encode/decode round-trips and every
 * framing violation class (truncation, garbage, oversized lengths,
 * CRC corruption).  The server tests run a real server on an ephemeral
 * loopback port and prove the acceptance criteria: concurrent clients
 * observe digests byte-identical to in-process execution — including
 * while an adaptive repartition swaps the layout underneath the open
 * connections — backpressure rejects are typed, graceful drain
 * delivers every admitted response, and the dvp_server_* metrics reach
 * the Prometheus exporter.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <thread>
#include <vector>

#include "adaptive/adaptive_engine.hh"
#include "client/client.hh"
#include "net/socket.hh"
#include "net/wire.hh"
#include "nobench/generator.hh"
#include "nobench/queries.hh"
#include "nobench/workload.hh"
#include "obs/export.hh"
#include "obs/metrics.hh"
#include "server/http.hh"
#include "server/server.hh"
#include "sql/run.hh"

namespace dvp
{
namespace
{

using adaptive::AdaptiveEngine;
using adaptive::Params;

// ---------------------------------------------------------------------
// Wire protocol.
// ---------------------------------------------------------------------

TEST(Wire, CrcMatchesKnownVector)
{
    // IEEE CRC-32 of "123456789" is the classic check value.
    EXPECT_EQ(net::crc32("123456789", 9), 0xCBF43926u);
    EXPECT_EQ(net::crc32("", 0), 0u);
}

TEST(Wire, TypedBodiesRoundTrip)
{
    net::HelloBody hello;
    hello.clientName = "unit";
    net::HelloBody hello2;
    ASSERT_TRUE(decodeHello(encodeHello(hello), hello2));
    EXPECT_EQ(hello2.wireVersion, net::kWireVersion);
    EXPECT_EQ(hello2.clientName, "unit");

    net::HelloOkBody ok;
    ok.serverName = "dvpd-test";
    ok.sessionId = 42;
    net::HelloOkBody ok2;
    ASSERT_TRUE(decodeHelloOk(encodeHelloOk(ok), ok2));
    EXPECT_EQ(ok2.serverName, "dvpd-test");
    EXPECT_EQ(ok2.sessionId, 42u);

    net::QueryBody q;
    q.sql = "SELECT * FROM t WHERE num BETWEEN 1 AND 2";
    net::QueryBody q2;
    ASSERT_TRUE(decodeQuery(encodeQuery(q), q2));
    EXPECT_EQ(q2.sql, q.sql);

    net::ErrorBody e;
    e.code = net::ErrorCode::ServerBusy;
    e.message = "try later";
    net::ErrorBody e2;
    ASSERT_TRUE(decodeError(encodeError(e), e2));
    EXPECT_EQ(e2.code, net::ErrorCode::ServerBusy);
    EXPECT_EQ(e2.message, "try later");

    net::ResultBody r;
    r.columns = {"oid", "num", "str1"};
    r.oids = {7, 9};
    r.rows = {{net::Cell{net::Cell::Kind::Int, 123, ""},
               net::Cell{net::Cell::Kind::Str, 0, "hello"}},
              {net::Cell{net::Cell::Kind::Null, 0, ""},
               net::Cell{net::Cell::Kind::Int, -5, ""}}};
    r.digest = 0xDEADBEEFCAFEF00DULL;
    r.checksum = 0x1234;
    r.execNs = 98765;
    net::ResultBody r2;
    ASSERT_TRUE(decodeResult(encodeResult(r), r2));
    EXPECT_EQ(r2.kind, net::ResultBody::Kind::Rows);
    EXPECT_EQ(r2.columns, r.columns);
    EXPECT_EQ(r2.oids, r.oids);
    ASSERT_EQ(r2.rows.size(), 2u);
    EXPECT_EQ(r2.rows[0][0].kind, net::Cell::Kind::Int);
    EXPECT_EQ(r2.rows[0][0].i, 123);
    EXPECT_EQ(r2.rows[0][1].s, "hello");
    EXPECT_EQ(r2.rows[1][0].kind, net::Cell::Kind::Null);
    EXPECT_EQ(r2.rows[1][1].i, -5);
    EXPECT_EQ(r2.digest, r.digest);
    EXPECT_EQ(r2.checksum, r.checksum);
    EXPECT_EQ(r2.execNs, r.execNs);

    net::ResultBody msg;
    msg.kind = net::ResultBody::Kind::Message;
    msg.message = "ingested 10 documents";
    net::ResultBody msg2;
    ASSERT_TRUE(decodeResult(encodeResult(msg), msg2));
    EXPECT_EQ(msg2.kind, net::ResultBody::Kind::Message);
    EXPECT_EQ(msg2.message, msg.message);

    net::StatsBody st;
    st.entries = {{"requests_total", 12}, {"docs", 5000}};
    net::StatsBody st2;
    ASSERT_TRUE(decodeStats(encodeStats(st), st2));
    EXPECT_EQ(st2.entries, st.entries);
}

TEST(Wire, AssemblerReassemblesByteDribble)
{
    // Three frames fed one byte at a time must come out intact and in
    // order.
    net::QueryBody q;
    q.sql = "SELECT str1, num FROM t";
    std::string stream =
        net::encodeFrame(net::FrameType::Hello,
                         encodeHello(net::HelloBody{})) +
        net::encodeFrame(net::FrameType::Query, encodeQuery(q)) +
        net::encodeFrame(net::FrameType::Close, "");

    net::FrameAssembler as;
    std::vector<net::Frame> frames;
    net::Frame f;
    for (char c : stream) {
        as.feed(&c, 1);
        while (as.next(f))
            frames.push_back(f);
        EXPECT_FALSE(as.error());
    }
    ASSERT_EQ(frames.size(), 3u);
    EXPECT_EQ(frames[0].type, net::FrameType::Hello);
    EXPECT_EQ(frames[1].type, net::FrameType::Query);
    net::QueryBody q2;
    ASSERT_TRUE(decodeQuery(frames[1].payload, q2));
    EXPECT_EQ(q2.sql, q.sql);
    EXPECT_EQ(frames[2].type, net::FrameType::Close);
    EXPECT_EQ(as.buffered(), 0u);
}

TEST(Wire, TruncatedFrameIsPendingNotError)
{
    std::string frame = net::encodeFrame(
        net::FrameType::Query,
        encodeQuery(net::QueryBody{"SELECT * FROM t"}));
    net::FrameAssembler as;
    as.feed(frame.data(), frame.size() - 4);
    net::Frame f;
    EXPECT_FALSE(as.next(f));
    EXPECT_FALSE(as.error()) << as.errorDetail();
    as.feed(frame.data() + frame.size() - 4, 4);
    EXPECT_TRUE(as.next(f));
    EXPECT_EQ(f.type, net::FrameType::Query);
}

TEST(Wire, GarbageMagicLatchesError)
{
    net::FrameAssembler as;
    std::string junk = "GET / HTTP/1.1\r\nHost: nope\r\n\r\n";
    as.feed(junk.data(), junk.size());
    net::Frame f;
    EXPECT_FALSE(as.next(f));
    EXPECT_TRUE(as.error());
    EXPECT_NE(as.errorDetail().find("magic"), std::string::npos);
}

TEST(Wire, BadVersionAndReservedAndOversizedAreErrors)
{
    std::string good = net::encodeFrame(net::FrameType::Close, "");

    {
        std::string bad = good;
        bad[2] = char(net::kWireVersion + 1); // version byte
        net::FrameAssembler as;
        as.feed(bad.data(), bad.size());
        net::Frame f;
        EXPECT_FALSE(as.next(f));
        EXPECT_TRUE(as.error());
    }
    {
        std::string bad = good;
        bad[12] = 1; // reserved must be zero
        net::FrameAssembler as;
        as.feed(bad.data(), bad.size());
        net::Frame f;
        EXPECT_FALSE(as.next(f));
        EXPECT_TRUE(as.error());
    }
    {
        std::string bad = good;
        uint32_t huge = net::kMaxPayload + 1;
        std::memcpy(&bad[4], &huge, 4); // length field
        net::FrameAssembler as;
        as.feed(bad.data(), bad.size());
        net::Frame f;
        EXPECT_FALSE(as.next(f));
        EXPECT_TRUE(as.error());
    }
    {
        std::string bad = good;
        bad[3] = 99; // frame type out of range
        net::FrameAssembler as;
        as.feed(bad.data(), bad.size());
        net::Frame f;
        EXPECT_FALSE(as.next(f));
        EXPECT_TRUE(as.error());
    }
}

TEST(Wire, CrcMismatchIsAnError)
{
    std::string frame = net::encodeFrame(
        net::FrameType::Query,
        encodeQuery(net::QueryBody{"SELECT * FROM t"}));
    frame[frame.size() - 1] ^= 0x40; // flip a payload bit
    net::FrameAssembler as;
    as.feed(frame.data(), frame.size());
    net::Frame f;
    EXPECT_FALSE(as.next(f));
    EXPECT_TRUE(as.error());
    EXPECT_NE(as.errorDetail().find("CRC"), std::string::npos);
}

TEST(Wire, DecodersRejectShortAndTrailingBytes)
{
    std::string ok = encodeQuery(net::QueryBody{"SELECT 1"});
    net::QueryBody q;
    EXPECT_FALSE(decodeQuery(ok.substr(0, ok.size() - 1), q));
    EXPECT_FALSE(decodeQuery(ok + "x", q));

    // A RESULT whose row count implies more bytes than the payload
    // holds must fail cleanly instead of over-allocating.
    net::ResultBody r;
    r.oids = {1};
    r.rows = {{net::Cell{net::Cell::Kind::Int, 7, ""}}};
    std::string enc = encodeResult(r);
    net::ResultBody out;
    EXPECT_FALSE(decodeResult(enc.substr(0, enc.size() / 2), out));
}

// ---------------------------------------------------------------------
// Server fixture: one NoBench data set shared by every server test.
// ---------------------------------------------------------------------

/** Q1-Q11 as SQL (the paper's mix; Q12/LOAD is tested separately). */
const std::vector<std::string> &
queryMix()
{
    static const std::vector<std::string> mix = {
        "SELECT str1, num FROM t",
        "SELECT nested_obj.str, sparse_300 FROM t",
        "SELECT sparse_110, sparse_119 FROM t",
        "SELECT sparse_110, sparse_220 FROM t",
        "SELECT * FROM t WHERE str1 = 'str1_17'",
        "SELECT * FROM t WHERE num BETWEEN 1000 AND 1999",
        "SELECT * FROM t WHERE dyn1 BETWEEN 5000 AND 6999",
        "SELECT sparse_330, num FROM t WHERE 'arr_7' = ANY nested_arr",
        "SELECT * FROM t WHERE sparse_300 = 'sparse_val_3'",
        "SELECT COUNT(*) FROM t WHERE num BETWEEN 0 AND 499999 "
        "GROUP BY thousandth",
        "SELECT * FROM t AS l INNER JOIN t AS r "
        "ON l.nested_obj.str = r.str1 WHERE l.num BETWEEN 0 AND 999",
    };
    return mix;
}

class ServerWorld : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        uint64_t docs = 1200;
        if (const char *env = std::getenv("DVP_TEST_DOCS"))
            docs = std::strtoull(env, nullptr, 10);
        cfg.numDocs = docs;
        cfg.seed = 99;
        data = new engine::DataSet(nobench::generateDataSet(cfg));
        qs = new nobench::QuerySet(*data, cfg);
    }

    static void
    TearDownTestSuite()
    {
        delete qs;
        delete data;
        qs = nullptr;
        data = nullptr;
    }

    /** A fresh engine over the shared (copied) data set. */
    struct World
    {
        engine::DataSet data;
        std::unique_ptr<AdaptiveEngine> engine;

        explicit World(Params prm = defaultParams())
            : data(*ServerWorld::data)
        {
            Rng rng(1);
            auto initial = nobench::representatives(
                *ServerWorld::qs, nobench::Mix::uniform(), rng);
            engine =
                std::make_unique<AdaptiveEngine>(data, initial, prm);
        }
    };

    static Params
    defaultParams()
    {
        Params prm;
        prm.background = true;
        prm.adapt = false; // repartition tests opt in explicitly
        return prm;
    }

    static nobench::Config cfg;
    static engine::DataSet *data;
    static nobench::QuerySet *qs;
};

nobench::Config ServerWorld::cfg;
engine::DataSet *ServerWorld::data = nullptr;
nobench::QuerySet *ServerWorld::qs = nullptr;

TEST_F(ServerWorld, HandshakeQueryAndStats)
{
    World w;
    server::Server srv(*w.engine, {});
    ASSERT_EQ(srv.start(), "");

    client::Client c;
    ASSERT_EQ(c.connect("127.0.0.1", srv.port(), "unit"), "");
    EXPECT_EQ(c.serverName(), "dvpd");
    EXPECT_GT(c.sessionId(), 0u);

    client::Result r =
        c.query("SELECT * FROM t WHERE num BETWEEN 1000 AND 1999");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_FALSE(r.isMessage);
    EXPECT_EQ(r.rows.size(), r.oids.size());

    // The digest in the frame matches an in-process run.
    sql::RunResult local = sql::runStatement(
        *w.engine, "SELECT * FROM t WHERE num BETWEEN 1000 AND 1999");
    ASSERT_TRUE(local.ok);
    EXPECT_EQ(r.digest, local.rows.digest());
    EXPECT_EQ(r.checksum, local.rows.checksum);
    EXPECT_EQ(r.rows.size(), local.rows.rowCount());

    // EXPLAIN comes back as a message.
    client::Result ex =
        c.query("EXPLAIN SELECT str1, num FROM t");
    ASSERT_TRUE(ex.ok) << ex.error;
    EXPECT_TRUE(ex.isMessage);
    EXPECT_NE(ex.message.find("selectivity"), std::string::npos);

    // STATS reflects the session.
    client::Stats st = c.stats();
    ASSERT_TRUE(st.ok) << st.error;
    EXPECT_EQ(st.get("connections_total"), 1u);
    EXPECT_GE(st.get("requests_total"), 2u);
    EXPECT_EQ(st.get("docs"), w.data.docs.size());

    // Parse errors are typed, and the connection survives them.
    client::Result bad = c.query("SELEKT nope");
    EXPECT_FALSE(bad.ok);
    EXPECT_EQ(bad.errorCode, net::ErrorCode::Parse);
    client::Result again = c.query("SELECT str1, num FROM t");
    EXPECT_TRUE(again.ok) << again.error;

    c.close();
    srv.stop();
    server::ServerStats s = srv.stats();
    EXPECT_EQ(s.connections, 1u);
    EXPECT_GE(s.requests, 3u);
}

TEST_F(ServerWorld, QueryBeforeHelloIsAProtocolError)
{
    World w;
    server::Server srv(*w.engine, {});
    ASSERT_EQ(srv.start(), "");

    std::string err;
    int fd = net::connectTcp("127.0.0.1", srv.port(), 2000, &err);
    ASSERT_GE(fd, 0) << err;
    std::string frame = net::encodeFrame(
        net::FrameType::Query,
        encodeQuery(net::QueryBody{"SELECT str1, num FROM t"}));
    ASSERT_TRUE(net::sendAll(fd, frame.data(), frame.size()));

    net::FrameAssembler as;
    net::Frame f;
    char buf[4096];
    bool got = false;
    while (!got) {
        long n = net::recvSome(fd, buf, sizeof(buf));
        ASSERT_GT(n, 0) << "server closed without an ERROR frame";
        as.feed(buf, static_cast<size_t>(n));
        got = as.next(f);
        ASSERT_FALSE(as.error());
    }
    EXPECT_EQ(f.type, net::FrameType::Error);
    net::ErrorBody e;
    ASSERT_TRUE(decodeError(f.payload, e));
    EXPECT_EQ(e.code, net::ErrorCode::Protocol);

    // And the server hangs up: the next read is EOF.
    long n = net::recvSome(fd, buf, sizeof(buf));
    EXPECT_LE(n, 0);
    net::closeFd(fd);
    srv.stop();
}

TEST_F(ServerWorld, GarbageBytesGetTypedProtocolError)
{
    World w;
    server::Server srv(*w.engine, {});
    ASSERT_EQ(srv.start(), "");

    std::string err;
    int fd = net::connectTcp("127.0.0.1", srv.port(), 2000, &err);
    ASSERT_GE(fd, 0) << err;
    std::string junk = "this is not a frame";
    ASSERT_TRUE(net::sendAll(fd, junk.data(), junk.size()));

    net::FrameAssembler as;
    net::Frame f;
    char buf[4096];
    bool got = false;
    while (!got) {
        long n = net::recvSome(fd, buf, sizeof(buf));
        if (n <= 0)
            break; // EOF before the error frame is also acceptable
        as.feed(buf, static_cast<size_t>(n));
        got = as.next(f);
    }
    if (got) {
        net::ErrorBody e;
        ASSERT_TRUE(decodeError(f.payload, e));
        EXPECT_EQ(e.code, net::ErrorCode::Protocol);
    }
    net::closeFd(fd);
    srv.stop();
    EXPECT_GE(srv.stats().protocolErrors, 1u);
}

TEST_F(ServerWorld, ConcurrentClientsMatchInProcessDigests)
{
    World w;
    server::Config scfg;
    scfg.workers = 3;
    server::Server srv(*w.engine, scfg);
    ASSERT_EQ(srv.start(), "");

    // In-process reference digests through the exact same dispatch.
    std::vector<uint64_t> expect_digest, expect_checksum, expect_rows;
    for (const std::string &sql : queryMix()) {
        sql::RunResult r = sql::runStatement(*w.engine, sql);
        ASSERT_TRUE(r.ok) << sql << ": " << r.error;
        expect_digest.push_back(r.rows.digest());
        expect_checksum.push_back(r.rows.checksum);
        expect_rows.push_back(r.rows.rowCount());
    }

    constexpr int kClients = 4;
    constexpr int kRounds = 3;
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kClients; ++t) {
        threads.emplace_back([&, t] {
            client::Client c;
            if (!c.connect("127.0.0.1", srv.port(),
                           "digest-" + std::to_string(t))
                     .empty()) {
                ++failures;
                return;
            }
            for (int round = 0; round < kRounds; ++round) {
                for (size_t qi = 0; qi < queryMix().size(); ++qi) {
                    client::Result r = c.query(queryMix()[qi]);
                    if (!r.ok || r.digest != expect_digest[qi] ||
                        r.checksum != expect_checksum[qi] ||
                        r.rows.size() != expect_rows[qi]) {
                        ADD_FAILURE()
                            << "client " << t << " Q" << (qi + 1)
                            << " mismatch: " << r.error;
                        ++failures;
                    }
                }
            }
            c.close();
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(failures.load(), 0);
    srv.stop();
    EXPECT_EQ(srv.stats().connections,
              static_cast<uint64_t>(kClients));
    EXPECT_GE(srv.stats().requests,
              static_cast<uint64_t>(kClients * kRounds *
                                    queryMix().size()));
}

TEST_F(ServerWorld, DigestsStableWhileRepartitionSwapsUnderneath)
{
    // Adaptation on, tiny window: an in-process workload shift forces
    // a background repartition while wire clients keep querying.
    Params prm;
    prm.background = true;
    prm.adapt = true;
    prm.window = 20;
    prm.changeThreshold = 0.1;
    World w(prm);

    server::Config scfg;
    scfg.workers = 2;
    server::Server srv(*w.engine, scfg);
    ASSERT_EQ(srv.start(), "");

    std::vector<uint64_t> expect_digest;
    for (const std::string &sql : queryMix()) {
        sql::RunResult r = sql::runStatement(*w.engine, sql);
        ASSERT_TRUE(r.ok) << sql << ": " << r.error;
        expect_digest.push_back(r.rows.digest());
    }

    std::atomic<bool> stop{false};
    std::atomic<int> failures{0};

    // Wire clients: loop the mix, digests must never change.
    std::vector<std::thread> clients;
    for (int t = 0; t < 2; ++t) {
        clients.emplace_back([&, t] {
            client::Client c;
            if (!c.connect("127.0.0.1", srv.port(),
                           "race-" + std::to_string(t))
                     .empty()) {
                ++failures;
                return;
            }
            size_t qi = 0;
            while (!stop.load(std::memory_order_relaxed)) {
                size_t i = qi++ % queryMix().size();
                client::Result r = c.query(queryMix()[i]);
                if (!r.ok || r.digest != expect_digest[i]) {
                    ADD_FAILURE() << "during swap, Q" << (i + 1)
                                  << ": " << r.error;
                    ++failures;
                    break;
                }
            }
            c.close();
        });
    }

    // Shift the workload in-process until a repartition lands.
    Rng rng(7);
    int guard = 0;
    while (w.engine->adaptation().repartitions.load(
               std::memory_order_relaxed) == 0 &&
           ++guard < 2000) {
        w.engine->execute(ServerWorld::qs->instantiateShifted(
            guard % nobench::kNumTemplates, rng));
    }
    w.engine->quiesce(); // repartition complete, layout swapped
    EXPECT_GE(w.engine->adaptation().repartitions.load(
                  std::memory_order_relaxed),
              1u);

    // Keep the wire traffic going a little longer on the new layout.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    stop.store(true, std::memory_order_relaxed);
    for (auto &th : clients)
        th.join();
    EXPECT_EQ(failures.load(), 0);
    srv.stop();
}

TEST_F(ServerWorld, BackpressureRejectsAreTypedAndRecoverable)
{
    World w;
    server::Config scfg;
    scfg.workers = 1;
    scfg.maxInflight = 1;
    server::Server srv(*w.engine, scfg);

    // The hook parks the single worker until released, pinning
    // inflight at the watermark deterministically.
    std::mutex mu;
    std::condition_variable cv;
    bool entered = false, release = false;
    srv.setExecuteHook([&] {
        std::unique_lock<std::mutex> lock(mu);
        entered = true;
        cv.notify_all();
        cv.wait(lock, [&] { return release; });
    });
    ASSERT_EQ(srv.start(), "");

    client::Client a, b;
    ASSERT_EQ(a.connect("127.0.0.1", srv.port(), "a"), "");
    ASSERT_EQ(b.connect("127.0.0.1", srv.port(), "b"), "");

    std::thread slow([&] {
        client::Result r = a.query("SELECT str1, num FROM t");
        EXPECT_TRUE(r.ok) << r.error;
    });
    {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return entered; });
    }
    ASSERT_EQ(srv.inflight(), 1u);

    // Past the watermark: typed SERVER_BUSY, connection stays usable.
    client::Result busy = b.query("SELECT str1, num FROM t");
    EXPECT_FALSE(busy.ok);
    EXPECT_TRUE(busy.busy());
    EXPECT_EQ(busy.errorCode, net::ErrorCode::ServerBusy);

    {
        std::lock_guard<std::mutex> lock(mu);
        release = true;
    }
    cv.notify_all();
    slow.join();
    srv.setExecuteHook({});

    // After the slot frees, the same connection succeeds.  The slot is
    // released only after the worker finishes writing the previous
    // response, so a prompt follow-up can still catch the busy window;
    // SERVER_BUSY is typed precisely so clients can retry it.
    client::Result again = b.query("SELECT str1, num FROM t");
    for (int i = 0; i < 50 && !again.ok && again.busy(); ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        again = b.query("SELECT str1, num FROM t");
    }
    EXPECT_TRUE(again.ok) << again.error;

    a.close();
    b.close();
    srv.stop();
    EXPECT_GE(srv.stats().rejects, 1u);
}

TEST_F(ServerWorld, GracefulDrainDeliversInflightAndRefusesNew)
{
    World w;
    server::Config scfg;
    scfg.workers = 1;
    server::Server srv(*w.engine, scfg);

    std::mutex mu;
    std::condition_variable cv;
    bool entered = false, release = false;
    srv.setExecuteHook([&] {
        std::unique_lock<std::mutex> lock(mu);
        entered = true;
        cv.notify_all();
        cv.wait(lock, [&] { return release; });
    });
    ASSERT_EQ(srv.start(), "");
    uint16_t port = srv.port();

    client::Client a, b;
    ASSERT_EQ(a.connect("127.0.0.1", port, "a"), "");
    ASSERT_EQ(b.connect("127.0.0.1", port, "b"), "");

    std::thread slow([&] {
        // Admitted before the drain: must still get its full result.
        client::Result r = a.query("SELECT str1, num FROM t");
        EXPECT_TRUE(r.ok) << r.error;
        EXPECT_GT(r.rows.size(), 0u);
    });
    {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return entered; });
    }

    srv.requestStop();
    // The drain closes the listener before refusing queries; once new
    // connections fail, the SHUTTING_DOWN path is active.
    for (int i = 0; i < 200; ++i) {
        std::string err;
        int fd = net::connectTcp("127.0.0.1", port, 200, &err);
        if (fd < 0)
            break;
        net::closeFd(fd);
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }

    client::Result refused = b.query("SELECT str1, num FROM t");
    EXPECT_FALSE(refused.ok);
    EXPECT_TRUE(refused.shuttingDown())
        << net::errorCodeName(refused.errorCode) << " "
        << refused.error;

    {
        std::lock_guard<std::mutex> lock(mu);
        release = true;
    }
    cv.notify_all();
    slow.join();
    srv.stop();
    EXPECT_TRUE(srv.drained());
    EXPECT_FALSE(srv.running());

    // Fully stopped: nothing is listening any more.
    std::string err;
    int fd = net::connectTcp("127.0.0.1", port, 200, &err);
    if (fd >= 0)
        net::closeFd(fd);
    EXPECT_LT(fd, 0);
}

TEST_F(ServerWorld, LoadDataOverTheWire)
{
    // Q12: bulk ingest through the server, gated by Config::allowLoad.
    std::string path = ::testing::TempDir() + "dvp_server_load.jsonl";
    {
        std::ofstream out(path);
        for (int i = 0; i < 25; ++i)
            out << "{\"num\": " << (9000000 + i)
                << ", \"str1\": \"wire_load_" << i << "\"}\n";
    }

    {
        // Default config refuses LOAD with a typed Unsupported error.
        World w;
        server::Server srv(*w.engine, {});
        ASSERT_EQ(srv.start(), "");
        client::Client c;
        ASSERT_EQ(c.connect("127.0.0.1", srv.port()), "");
        client::Result r =
            c.query("LOAD DATA LOCAL INFILE '" + path +
                    "' REPLACE INTO TABLE t");
        EXPECT_FALSE(r.ok);
        EXPECT_EQ(r.errorCode, net::ErrorCode::Unsupported);
        c.close();
        srv.stop();
    }

    World w;
    server::Config scfg;
    scfg.allowLoad = true;
    server::Server srv(*w.engine, scfg);
    ASSERT_EQ(srv.start(), "");
    client::Client c;
    ASSERT_EQ(c.connect("127.0.0.1", srv.port()), "");

    uint64_t docs_before = c.stats().get("docs");
    client::Result r = c.query("LOAD DATA LOCAL INFILE '" + path +
                               "' REPLACE INTO TABLE t");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(r.isMessage);
    EXPECT_NE(r.message.find("25"), std::string::npos);
    EXPECT_EQ(c.stats().get("docs"), docs_before + 25);

    // The ingested rows are immediately queryable on this connection.
    client::Result probe = c.query(
        "SELECT * FROM t WHERE num BETWEEN 9000000 AND 9000024");
    ASSERT_TRUE(probe.ok) << probe.error;
    EXPECT_EQ(probe.rows.size(), 25u);

    // A missing file is an Exec error, not a dead connection.
    client::Result gone = c.query(
        "LOAD DATA LOCAL INFILE '/nonexistent/nope.jsonl' "
        "REPLACE INTO TABLE t");
    EXPECT_FALSE(gone.ok);
    EXPECT_EQ(gone.errorCode, net::ErrorCode::Exec);

    c.close();
    srv.stop();
    std::remove(path.c_str());
}

TEST_F(ServerWorld, IdleSessionsAreReaped)
{
    World w;
    server::Config scfg;
    scfg.idleTimeoutMs = 150;
    scfg.tickMs = 20;
    server::Server srv(*w.engine, scfg);
    ASSERT_EQ(srv.start(), "");

    client::Client c;
    ASSERT_EQ(c.connect("127.0.0.1", srv.port()), "");

    // Go idle past the timeout: the server hangs up on us.
    std::this_thread::sleep_for(std::chrono::milliseconds(600));
    client::Result r = c.query("SELECT str1, num FROM t");
    EXPECT_FALSE(r.ok);
    srv.stop();
}

TEST_F(ServerWorld, ServerMetricsReachThePrometheusExporter)
{
    // Satellite: dvp_server_* counters/gauges/histogram flow through
    // the obs registry and the Prometheus exporter verbatim.
    World w;
    server::Server srv(*w.engine, {});
    ASSERT_EQ(srv.start(), "");
    client::Client c;
    ASSERT_EQ(c.connect("127.0.0.1", srv.port()), "");
    ASSERT_TRUE(c.query("SELECT str1, num FROM t").ok);
    c.close();
    srv.stop();

    std::string text =
        obs::exportPrometheus(obs::Registry::global());
    EXPECT_NE(text.find("# TYPE dvp_server_connections_total counter"),
              std::string::npos);
    EXPECT_NE(text.find("dvp_server_requests_total"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE dvp_server_queue_depth gauge"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE dvp_server_request_ns histogram"),
              std::string::npos);
    EXPECT_NE(text.find("dvp_server_request_ns_count"),
              std::string::npos);
    // Gauges exist even when they currently read zero.
    EXPECT_NE(text.find("dvp_server_sessions_active"),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Request-scoped observability over the wire.
// ---------------------------------------------------------------------

TEST_F(ServerWorld, TraceIdAndOperatorSummaryPropagate)
{
    World w;
    server::Server srv(*w.engine, {});
    ASSERT_EQ(srv.start(), "");

    client::Client c;
    c.setTraceId(0xabad1deaf00dfeedull);
    ASSERT_EQ(c.connect("127.0.0.1", srv.port(), "traced"), "");
    // Both ends speak level 2, so the handshake lands there.
    EXPECT_EQ(c.featureLevel(), net::kFeatureTrace);

    client::Result r =
        c.query("SELECT * FROM t WHERE num BETWEEN 1000 AND 1999");
    ASSERT_TRUE(r.ok) << r.error;
    // The server echoes the trace id and ships the operator summary.
    EXPECT_TRUE(r.hasTraceId);
    EXPECT_EQ(r.traceId, 0xabad1deaf00dfeedull);
    EXPECT_GT(r.execNs, 0u);
    ASSERT_FALSE(r.opStats.empty());
    auto get = [&](const std::string &k) -> uint64_t {
        for (const auto &[key, v] : r.opStats)
            if (key == k)
                return v;
        ADD_FAILURE() << "missing opStats key " << k;
        return 0;
    };
    EXPECT_EQ(get("rows_out"), r.rows.size());
    EXPECT_GT(get("rows_scanned"), 0u);

    // Clearing the trace id stops the echo but keeps the summary.
    c.setTraceId(0);
    client::Result r2 = c.query("SELECT str1, num FROM t");
    ASSERT_TRUE(r2.ok) << r2.error;
    EXPECT_FALSE(r2.hasTraceId);
    EXPECT_FALSE(r2.opStats.empty());

    c.close();
    srv.stop();
}

TEST_F(ServerWorld, LegacyClientWithoutTlvSupportStillWorks)
{
    // Compat: a pre-TLV client advertises level 1; the session must
    // degrade to the legacy encoding and complete queries unchanged.
    World w;
    server::Server srv(*w.engine, {});
    ASSERT_EQ(srv.start(), "");

    client::Client legacy;
    legacy.setMaxFeatureLevel(net::kFeatureBase);
    legacy.setTraceId(123); // must be ignored at level 1
    ASSERT_EQ(legacy.connect("127.0.0.1", srv.port(), "old"), "");
    EXPECT_EQ(legacy.featureLevel(), net::kFeatureBase);

    client::Result r =
        legacy.query("SELECT * FROM t WHERE num BETWEEN 1000 AND 1999");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_FALSE(r.hasTraceId);
    EXPECT_TRUE(r.opStats.empty());

    sql::RunResult local = sql::runStatement(
        *w.engine, "SELECT * FROM t WHERE num BETWEEN 1000 AND 1999");
    ASSERT_TRUE(local.ok);
    EXPECT_EQ(r.digest, local.rows.digest());
    EXPECT_EQ(r.rows.size(), local.rows.rowCount());

    legacy.close();
    srv.stop();
}

TEST_F(ServerWorld, StatsExposeAdaptiveAuditTrail)
{
    World w;
    server::Server srv(*w.engine, {});
    ASSERT_EQ(srv.start(), "");

    client::Client c;
    ASSERT_EQ(c.connect("127.0.0.1", srv.port()), "");
    client::Stats st = c.stats();
    ASSERT_TRUE(st.ok) << st.error;

    // Construction recorded the initial partitioning decision.
    EXPECT_GE(st.get("audit_records"), 1u);
    EXPECT_GE(st.get("audit_last_seq"), 1u);
    EXPECT_GT(st.get("audit_last_tables"), 0u);
    EXPECT_EQ(st.get("audit_last_layout_fingerprint"),
              w.engine->snapshot()->layoutFingerprint());
    EXPECT_EQ(st.get("layout_epoch"), w.engine->snapshot()->epoch());

    c.close();
    srv.stop();
}

// ---------------------------------------------------------------------
// HTTP scrape endpoint.
// ---------------------------------------------------------------------

namespace
{

/** Blocking one-shot HTTP GET; returns the raw response bytes. */
std::string
httpGet(uint16_t port, const std::string &target)
{
    std::string err;
    int fd = net::connectTcp("127.0.0.1", port, 2000, &err);
    if (fd < 0)
        return "connect failed: " + err;
    std::string req = "GET " + target +
                      " HTTP/1.1\r\nHost: localhost\r\n"
                      "Connection: close\r\n\r\n";
    net::sendAll(fd, req.data(), req.size());
    std::string resp;
    char buf[4096];
    long got;
    while ((got = net::recvSome(fd, buf, sizeof(buf))) > 0)
        resp.append(buf, static_cast<size_t>(got));
    net::closeFd(fd);
    return resp;
}

} // namespace

TEST(HttpEndpoint, MetricsAndHealthz)
{
    server::HttpServer http((server::HttpConfig()));
    ASSERT_EQ(http.start(), "");
    ASSERT_GT(http.port(), 0);

    // Seed at least one counter so the exposition is non-trivial.
    DVP_COUNTER_INC("dvp_http_test_counter_total");

    std::string metrics = httpGet(http.port(), "/metrics");
    EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
    EXPECT_NE(metrics.find("text/plain; version=0.0.4"),
              std::string::npos);
    EXPECT_NE(metrics.find("# TYPE dvp_http_test_counter_total "
                           "counter"),
              std::string::npos);

    std::string health = httpGet(http.port(), "/healthz");
    EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos);
    EXPECT_NE(health.find("ok"), std::string::npos);

    std::string missing = httpGet(http.port(), "/nope");
    EXPECT_NE(missing.find("HTTP/1.1 404"), std::string::npos);

    EXPECT_GE(http.requestsServed(), 3u);
    http.stop();
    EXPECT_FALSE(http.running());
}

// ---------------------------------------------------------------------
// Slow-query log.
// ---------------------------------------------------------------------

TEST_F(ServerWorld, SlowQueryLogWritesNdjsonRecords)
{
    World w;
    std::string path = "slow_query_test.ndjson";
    std::remove(path.c_str());

    server::Config scfg;
    scfg.slowMs = 1;
    scfg.slowLogPath = path;
    server::Server srv(*w.engine, scfg);
    ASSERT_EQ(srv.start(), "");

    client::Client c;
    c.setTraceId(0x5105105105105105ull);
    ASSERT_EQ(c.connect("127.0.0.1", srv.port()), "");

    // The self-join materializes one pair per document — heavy enough
    // to cross a 1 ms threshold; retry a few times to be safe.
    const std::string join =
        "SELECT * FROM t AS l INNER JOIN t AS r "
        "ON l.nested_obj.str = r.str1 "
        "WHERE l.num BETWEEN 0 AND 999999";
    std::string line;
    for (int attempt = 0; attempt < 20 && line.empty(); ++attempt) {
        ASSERT_TRUE(c.query(join).ok);
        std::ifstream in(path);
        std::getline(in, line);
    }
    c.close();
    srv.stop();

    ASSERT_FALSE(line.empty())
        << "no slow-query record after 20 join executions";
    // One NDJSON object per line with the documented fields.
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"statement\":\"SELECT * FROM t AS l"),
              std::string::npos);
    EXPECT_NE(line.find("\"trace_id\":\"5105105105105105\""),
              std::string::npos);
    EXPECT_NE(line.find("\"exec_ns\":"), std::string::npos);
    EXPECT_NE(line.find("\"layout_epoch\":"), std::string::npos);
    EXPECT_NE(line.find("\"stats\":{"), std::string::npos);
    EXPECT_NE(line.find("\"rows_out\":"), std::string::npos);
    std::remove(path.c_str());
}

} // namespace
} // namespace dvp
