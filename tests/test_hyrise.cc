/**
 * @file
 * Tests for the Hyrise baseline (src/hyrise): primary-partition
 * generation, the cost model's preferences, the exhaustive search's
 * exponential blow-up (the paper's "did not terminate"), and the
 * NoBench layout shape (paper: 11 tables, sparse-blind).
 */

#include <gtest/gtest.h>

#include "hyrise/hyrise_cost.hh"
#include "storage/padding.hh"
#include "hyrise/hyrise_layouter.hh"
#include "nobench/generator.hh"
#include "nobench/queries.hh"
#include "nobench/workload.hh"

namespace dvp::hyrise
{
namespace
{

using engine::CondOp;
using engine::QueryKind;
using layout::Layout;
using storage::AttrId;

/** Three attributes, two queries with distinct access patterns. */
class SmallHyrise : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        a = catalog.ensure("a");
        b = catalog.ensure("b");
        c = catalog.ensure("c");

        engine::Query q0;
        q0.name = "p";
        q0.kind = QueryKind::Project;
        q0.projected = {a, b};
        q0.frequency = 0.5;
        q0.selectivity = 1.0;

        engine::Query q1;
        q1.name = "s";
        q1.kind = QueryKind::Select;
        q1.selectAll = true;
        q1.cond.op = CondOp::Eq;
        q1.cond.attr = c;
        q1.cond.lo = 1;
        q1.frequency = 0.5;
        q1.selectivity = 0.01;

        queries = {q0, q1};
    }

    storage::Catalog catalog;
    AttrId a{}, b{}, c{};
    std::vector<engine::Query> queries;
};

TEST_F(SmallHyrise, PrimaryPartitionsGroupByAccessSignature)
{
    HyriseLayouter layouter(catalog, queries, 1000);
    auto primaries = layouter.primaryPartitions();
    // a and b share a signature ({q0, q1*}); c differs (q0 misses it).
    ASSERT_EQ(primaries.size(), 2u);
    Layout l(primaries);
    EXPECT_EQ(l.partitionOf(a), l.partitionOf(b));
    EXPECT_NE(l.partitionOf(a), l.partitionOf(c));
}

TEST_F(SmallHyrise, ExhaustiveSearchReturnsValidLayout)
{
    HyriseLayouter layouter(catalog, queries, 1000);
    HyriseResult res = layouter.run();
    ASSERT_TRUE(res.layout.has_value());
    res.layout->validate();
    EXPECT_EQ(res.layout->attrCount(), 3u);
    EXPECT_FALSE(res.capped);
    EXPECT_GT(res.evaluated, 0u);
    EXPECT_GT(res.estimatedMisses, 0.0);
}

TEST_F(SmallHyrise, CostModelSeparatesScanColumnFromWideTable)
{
    HyriseCostModel cost(catalog, queries, 100000);
    // Isolating the scanned condition column c beats a single wide
    // table: the scan touches fewer lines.
    Layout fat = Layout::rowBased({a, b, c});
    Layout split({{a, b}, {c}});
    EXPECT_LT(cost.estimate(split), cost.estimate(fat));
}

TEST_F(SmallHyrise, SingleColumnScanMissesShrinkWithNarrowTables)
{
    HyriseCostModel cost(catalog, queries, 1);
    EXPECT_LT(cost.singleColumnMissesPerRecord(1),
              cost.singleColumnMissesPerRecord(63));
}

TEST(HyriseCost, StrideMatchesStorageRule)
{
    EXPECT_EQ(HyriseCostModel::strideBytes(7), 64u);
    EXPECT_EQ(HyriseCostModel::strideBytes(1),
              storage::chooseStride(16));
}

// ---------------------------------------------------------------------
// NoBench-scale behaviour.
// ---------------------------------------------------------------------

class NoBenchHyrise : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        cfg.numDocs = 2000;
        cfg.seed = 5;
        data = new engine::DataSet(nobench::generateDataSet(cfg));
        nobench::QuerySet qs(*data, cfg);
        Rng rng(3);
        queries = new std::vector<engine::Query>(
            nobench::representatives(qs, nobench::Mix::uniform(), rng));
    }
    static void
    TearDownTestSuite()
    {
        delete queries;
        delete data;
        data = nullptr;
        queries = nullptr;
    }
    static nobench::Config cfg;
    static engine::DataSet *data;
    static std::vector<engine::Query> *queries;
};

nobench::Config NoBenchHyrise::cfg;
engine::DataSet *NoBenchHyrise::data = nullptr;
std::vector<engine::Query> *NoBenchHyrise::queries = nullptr;

TEST_F(NoBenchHyrise, PrimaryPartitionCountMatchesPaperShape)
{
    HyriseLayouter layouter(data->catalog, *queries,
                            data->docs.size());
    auto primaries = layouter.primaryPartitions();
    // Paper: Hyrise ends at 11 tables on NoBench.  Signature grouping
    // yields ~12 primaries, including one holding the ~1000 attributes
    // accessed only through SELECT *.
    EXPECT_GE(primaries.size(), 10u);
    EXPECT_LE(primaries.size(), 14u);
    size_t biggest = 0;
    for (const auto &p : primaries)
        biggest = std::max(biggest, p.size());
    EXPECT_GT(biggest, 950u); // the sparse-blind wide table
}

TEST_F(NoBenchHyrise, LayoutIsSparseBlind)
{
    HyriseLayouter layouter(data->catalog, *queries,
                            data->docs.size());
    HyriseResult res = layouter.run();
    ASSERT_TRUE(res.layout.has_value());
    res.layout->validate();
    EXPECT_GE(res.layout->partitionCount(), 8u);
    EXPECT_LE(res.layout->partitionCount(), 14u);

    // Unaccessed sparse attributes land in one wide table together
    // with unaccessed dense attributes — Hyrise has no sparseness
    // notion (this is exactly what DVP improves on).
    const auto &cat = data->catalog;
    EXPECT_EQ(res.layout->partitionOf(cat.find("sparse_555")),
              res.layout->partitionOf(cat.find("str2")));
    EXPECT_EQ(res.layout->partitionOf(cat.find("sparse_555")),
              res.layout->partitionOf(cat.find("sparse_665")));
}

TEST_F(NoBenchHyrise, ExhaustivePerAttributeSearchDoesNotTerminate)
{
    // The paper ran the Hyrise layouter on the 1019-attribute catalog
    // and killed it after hours.  With per-attribute search elements
    // and a work cap, the run reports `capped` instead of a layout.
    HyriseParams prm;
    prm.usePrimaryPartitions = false;
    prm.forceExhaustive = true;
    prm.workCap = 200000;
    HyriseLayouter layouter(data->catalog, *queries,
                            data->docs.size(), prm);
    HyriseResult res = layouter.run();
    EXPECT_TRUE(res.capped);
    EXPECT_FALSE(res.layout.has_value());
    EXPECT_GE(res.evaluated, prm.workCap);
}

TEST_F(NoBenchHyrise, GreedyAndExhaustiveAgreeOnSmallInputs)
{
    // Restrict to the projection templates (Q1-Q4): few enough
    // primaries that the exhaustive search completes, which lets us
    // check the greedy pruning is never better than exhaustive.
    std::vector<engine::Query> projections(queries->begin(),
                                           queries->begin() + 4);

    HyriseParams ex;
    ex.forceExhaustive = true;
    ex.exhaustiveLimit = 64;
    HyriseLayouter exhaustive(data->catalog, projections,
                              data->docs.size(), ex);
    HyriseResult res_ex = exhaustive.run();

    HyriseParams gr;
    gr.exhaustiveLimit = 0; // force greedy
    HyriseLayouter greedy(data->catalog, projections,
                          data->docs.size(), gr);
    HyriseResult res_gr = greedy.run();

    ASSERT_TRUE(res_ex.layout.has_value());
    ASSERT_TRUE(res_gr.layout.has_value());
    EXPECT_FALSE(res_ex.capped);
    EXPECT_LE(res_ex.estimatedMisses, res_gr.estimatedMisses + 1e-6);
}

TEST_F(SmallHyrise, CostScalesLinearlyInRows)
{
    HyriseCostModel small(catalog, queries, 1000);
    HyriseCostModel big(catalog, queries, 10000);
    Layout l = Layout::rowBased({a, b, c});
    EXPECT_NEAR(big.estimate(l), 10.0 * small.estimate(l), 1e-6);
}

TEST_F(SmallHyrise, SingleAttributeCatalogTrivialLayout)
{
    storage::Catalog one;
    storage::AttrId x = one.ensure("x");
    engine::Query q;
    q.kind = QueryKind::Project;
    q.projected = {x};
    q.frequency = 1.0;
    q.selectivity = 1.0;
    HyriseLayouter layouter(one, {q}, 100);
    HyriseResult res = layouter.run();
    ASSERT_TRUE(res.layout.has_value());
    EXPECT_EQ(res.layout->partitionCount(), 1u);
    EXPECT_EQ(res.layout->attrCount(), 1u);
}

TEST_F(SmallHyrise, EmptyWorkloadGroupsEverythingTogether)
{
    // With no queries every attribute shares the empty signature.
    HyriseLayouter layouter(catalog, {}, 100);
    auto primaries = layouter.primaryPartitions();
    ASSERT_EQ(primaries.size(), 1u);
    EXPECT_EQ(primaries[0].size(), 3u);
}

TEST_F(SmallHyrise, WorkCapZeroNeverEvaluates)
{
    HyriseParams prm;
    prm.workCap = 0;
    prm.forceExhaustive = true;
    HyriseLayouter layouter(catalog, queries, 100, prm);
    HyriseResult res = layouter.run();
    EXPECT_TRUE(res.capped);
    EXPECT_FALSE(res.layout.has_value());
    EXPECT_EQ(res.evaluated, 0u);
}

} // namespace
} // namespace dvp::hyrise
