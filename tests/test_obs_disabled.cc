/**
 * @file
 * Compiled into test_obs with DVP_OBS_DISABLED defined for this
 * translation unit only: exercises every instrumentation macro in
 * disabled form.  Mixing modes in one binary is safe by design — the
 * header's inline functions are identical in both modes, only the
 * macros change (metrics.hh: "mixed translation units are ODR-safe").
 * test_obs.cc asserts that none of the names below ever reach the
 * global registry or tracer.
 */

#define DVP_OBS_DISABLED 1

#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace dvp::obs::testing
{

void
recordDisabledMetrics()
{
    uint64_t n = 7;
    DVP_COUNTER_ADD("dvp_test_disabled_total", n);
    DVP_COUNTER_INC("dvp_test_disabled_inc_total");
    DVP_GAUGE_SET("dvp_test_disabled_gauge", 3);
    DVP_GAUGE_ADD("dvp_test_disabled_gauge", 2);
    DVP_GAUGE_HIGH("dvp_test_disabled_gauge", 9);
    DVP_HISTOGRAM_OBSERVE("dvp_test_disabled_ns", n);
    DVP_TRACE_SPAN(span, "dvp_test_disabled_span", "never recorded");
}

} // namespace dvp::obs::testing
