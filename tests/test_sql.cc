/**
 * @file
 * Tests for the SQL subset (src/sql): lexer, each Table III statement
 * form, error reporting, selectivity estimation, and execution of
 * parsed queries against the engine.
 */

#include <gtest/gtest.h>

#include "engine/database.hh"
#include "engine/executor.hh"
#include "engine/plan.hh"
#include "nobench/generator.hh"
#include "nobench/queries.hh"
#include "sql/lexer.hh"
#include "sql/parser.hh"

namespace dvp::sql
{
namespace
{

using engine::CondOp;
using engine::QueryKind;

// ---------------------------------------------------------------------
// Lexer.
// ---------------------------------------------------------------------

TEST(Lexer, KeywordsAreCaseInsensitive)
{
    LexResult r = lex("select From wHeRe betWEEN");
    ASSERT_TRUE(r.ok);
    ASSERT_EQ(r.tokens.size(), 5u); // + End
    EXPECT_EQ(r.tokens[0].text, "SELECT");
    EXPECT_EQ(r.tokens[1].text, "FROM");
    EXPECT_EQ(r.tokens[2].text, "WHERE");
    EXPECT_EQ(r.tokens[3].text, "BETWEEN");
}

TEST(Lexer, IdentifiersKeepPathsAndIndices)
{
    LexResult r = lex("nested_obj.str nested_arr[3] sparse_110");
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.tokens[0].text, "nested_obj.str");
    EXPECT_EQ(r.tokens[0].kind, TokKind::Ident);
    EXPECT_EQ(r.tokens[1].text, "nested_arr[3]");
    EXPECT_EQ(r.tokens[2].text, "sparse_110");
}

TEST(Lexer, NumbersAndNegatives)
{
    LexResult r = lex("42 -17");
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.tokens[0].number, 42);
    EXPECT_EQ(r.tokens[1].number, -17);
}

TEST(Lexer, StringsWithBothQuotesAndEscapes)
{
    LexResult r = lex("'abc' \"def\" 'it''s'");
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.tokens[0].text, "abc");
    EXPECT_EQ(r.tokens[1].text, "def");
    EXPECT_EQ(r.tokens[2].text, "it's");
}

TEST(Lexer, UnterminatedStringFails)
{
    LexResult r = lex("SELECT 'oops");
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("unterminated"), std::string::npos);
}

TEST(Lexer, RejectsStrayCharacters)
{
    EXPECT_FALSE(lex("SELECT @").ok);
}

// ---------------------------------------------------------------------
// Parser on a NoBench world.
// ---------------------------------------------------------------------

class SqlWorld : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        cfg.numDocs = 800;
        cfg.seed = 5150;
        data = new engine::DataSet(nobench::generateDataSet(cfg));
        db = new engine::Database(
            *data,
            layout::Layout::fixedSize(data->catalog.allAttrs(), 12),
            "sql");
    }
    static void
    TearDownTestSuite()
    {
        delete db;
        delete data;
        db = nullptr;
        data = nullptr;
    }

    engine::ResultSet
    run(const std::string &text)
    {
        ParseResult r = parse(text, *data);
        EXPECT_TRUE(r.ok) << r.error;
        engine::Executor exec(*db);
        return exec.run(r.query);
    }

    static nobench::Config cfg;
    static engine::DataSet *data;
    static engine::Database *db;
};

nobench::Config SqlWorld::cfg;
engine::DataSet *SqlWorld::data = nullptr;
engine::Database *SqlWorld::db = nullptr;

TEST_F(SqlWorld, ProjectionParses)
{
    ParseResult r = parse("SELECT str1, num FROM nobench_main", *data);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.kind, StatementKind::Query);
    EXPECT_EQ(r.query.kind, QueryKind::Project);
    ASSERT_EQ(r.query.projected.size(), 2u);
    EXPECT_EQ(r.query.projected[0], data->catalog.find("str1"));
    EXPECT_EQ(r.table, "nobench_main");
    EXPECT_DOUBLE_EQ(r.query.selectivity, 1.0);
}

TEST_F(SqlWorld, SelectStarWithEquality)
{
    ParseResult r = parse(
        "SELECT * FROM nobench_main WHERE str1 = 'str1_17'", *data);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(r.query.selectAll);
    EXPECT_EQ(r.query.kind, QueryKind::Select);
    EXPECT_EQ(r.query.cond.op, CondOp::Eq);

    engine::Executor exec(*db);
    engine::ResultSet rs = exec.run(r.query);
    ASSERT_EQ(rs.rowCount(), 1u);
    EXPECT_EQ(rs.oids[0], 17);
}

TEST_F(SqlWorld, BetweenParsesAndRuns)
{
    engine::ResultSet rs = run(
        "SELECT * FROM nobench_main WHERE num BETWEEN 0 AND 999999");
    EXPECT_EQ(rs.rowCount(), cfg.numDocs); // whole numeric range
}

TEST_F(SqlWorld, AnyMembershipExpandsArrayColumns)
{
    ParseResult r = parse(
        "SELECT sparse_330, num FROM nobench_main "
        "WHERE 'arr_7' = ANY nested_arr",
        *data);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.query.cond.op, CondOp::AnyEq);
    EXPECT_EQ(r.query.cond.anyAttrs.size(), 9u);
}

TEST_F(SqlWorld, CountGroupByParses)
{
    ParseResult r = parse(
        "SELECT COUNT(*) FROM nobench_main WHERE num BETWEEN 0 AND "
        "499999 GROUP BY thousandth",
        *data);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.query.kind, QueryKind::Aggregate);
    EXPECT_EQ(r.query.groupBy, data->catalog.find("thousandth"));

    engine::Executor exec(*db);
    engine::ResultSet rs = exec.run(r.query);
    int64_t total = 0;
    for (const auto &row : rs.rows)
        total += row[1];
    EXPECT_NEAR(static_cast<double>(total), cfg.numDocs / 2.0,
                cfg.numDocs * 0.1);
}

TEST_F(SqlWorld, JoinWithAliases)
{
    ParseResult r = parse(
        "SELECT * FROM nobench_main AS left INNER JOIN nobench_main "
        "AS right ON left.nested_obj.str = right.str1 "
        "WHERE left.num BETWEEN 0 AND 999999",
        *data);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.query.kind, QueryKind::Join);
    EXPECT_EQ(r.query.joinLeftAttr,
              data->catalog.find("nested_obj.str"));
    EXPECT_EQ(r.query.joinRightAttr, data->catalog.find("str1"));

    engine::Executor exec(*db);
    // Every document's nested_obj.str names some str1 -> one pair per
    // doc (str1 values are unique).
    EXPECT_EQ(exec.run(r.query).rowCount(), cfg.numDocs);
}

TEST_F(SqlWorld, JoinAliasOrderSwapsWhenReversed)
{
    ParseResult r = parse(
        "SELECT * FROM t AS l INNER JOIN t AS r "
        "ON r.str1 = l.nested_obj.str WHERE l.num BETWEEN 0 AND 9",
        *data);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.query.joinLeftAttr,
              data->catalog.find("nested_obj.str"));
    EXPECT_EQ(r.query.joinRightAttr, data->catalog.find("str1"));
}

TEST_F(SqlWorld, LoadStatement)
{
    ParseResult r = parse(
        "LOAD DATA LOCAL INFILE 'dump.json' REPLACE INTO TABLE "
        "nobench_main",
        *data);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.kind, StatementKind::Load);
    EXPECT_EQ(r.loadFile, "dump.json");
    EXPECT_EQ(r.table, "nobench_main");
}

TEST_F(SqlWorld, ExplainWrapsSelect)
{
    ParseResult r = parse("EXPLAIN SELECT str1 FROM t", *data);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.kind, StatementKind::Explain);
    EXPECT_EQ(r.query.kind, QueryKind::Project);
}

TEST_F(SqlWorld, UnknownColumnIsAllNullNotError)
{
    engine::ResultSet rs =
        run("SELECT ghost_column FROM nobench_main");
    EXPECT_EQ(rs.rowCount(), 0u); // projection of all-NULL column
}

TEST_F(SqlWorld, UnknownStringLiteralMatchesNothing)
{
    engine::ResultSet rs = run(
        "SELECT * FROM t WHERE str1 = 'never_ingested_value'");
    EXPECT_EQ(rs.rowCount(), 0u);
}

TEST_F(SqlWorld, TrailingSemicolonAccepted)
{
    EXPECT_TRUE(parse("SELECT num FROM t;", *data).ok);
}

TEST_F(SqlWorld, ErrorsNameTheOffset)
{
    ParseResult r = parse("SELECT FROM t", *data);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("offset"), std::string::npos);

    EXPECT_FALSE(parse("SELECT a b FROM t", *data).ok);
    EXPECT_FALSE(parse("SELECT a FROM t WHERE", *data).ok);
    EXPECT_FALSE(parse("SELECT a FROM t WHERE x BETWEEN 1", *data).ok);
    EXPECT_FALSE(parse("SELECT a FROM t GROUP BY x", *data).ok);
    EXPECT_FALSE(parse("SELECT a FROM t extra", *data).ok);
    EXPECT_FALSE(parse("LOAD DATA INFILE 'f'", *data).ok);
}

TEST_F(SqlWorld, MatchesHandwrittenTemplateResults)
{
    // The SQL form of Q1 must equal the programmatic template.
    nobench::QuerySet qs(*data, cfg);
    Rng rng(8);
    engine::Query q1 = qs.instantiate(nobench::kQ1, rng);
    ParseResult r = parse("SELECT str1, num FROM nobench_main", *data);
    ASSERT_TRUE(r.ok);
    engine::Executor exec(*db);
    EXPECT_TRUE(exec.run(r.query).equals(exec.run(q1)));
}

// ---------------------------------------------------------------------
// Template round trips: SQL text -> Query -> bound plan -> digest,
// checked against hand-built Query objects with the same literals.
// ---------------------------------------------------------------------

TEST_F(SqlWorld, RoundTripsMatchHandBuiltTemplates)
{
    auto A = [&](const char *n) { return data->catalog.find(n); };
    auto S = [&](const std::string &v) {
        storage::StringId id = data->dict.lookup(v);
        if (id == storage::Dictionary::kMissing)
            return storage::encodeString(storage::Dictionary::kMissing -
                                         1);
        return storage::encodeString(id);
    };
    auto project = [&](const char *a, const char *b) {
        engine::Query q;
        q.kind = QueryKind::Project;
        q.projected = {A(a), A(b)};
        return q;
    };

    engine::Query q5;
    q5.kind = QueryKind::Select;
    q5.selectAll = true;
    q5.cond.op = CondOp::Eq;
    q5.cond.attr = A("str1");
    q5.cond.lo = S("str1_17");

    auto between = [&](const char *a, int64_t lo, int64_t hi) {
        engine::Query q;
        q.kind = QueryKind::Select;
        q.selectAll = true;
        q.cond.op = CondOp::Between;
        q.cond.attr = A(a);
        q.cond.lo = lo;
        q.cond.hi = hi;
        return q;
    };

    engine::Query q8;
    q8.kind = QueryKind::Select;
    q8.projected = {A("sparse_330"), A("num")};
    q8.cond.op = CondOp::AnyEq;
    for (int i = 0; i <= nobench::Config::kMaxArrLen; ++i)
        q8.cond.anyAttrs.push_back(
            A(("nested_arr[" + std::to_string(i) + "]").c_str()));
    q8.cond.lo = S("arr_7");

    engine::Query q9;
    q9.kind = QueryKind::Select;
    q9.selectAll = true;
    q9.cond.op = CondOp::Eq;
    q9.cond.attr = A("sparse_300");
    q9.cond.lo = S("sparse_val_3");

    engine::Query q10 = between("num", 0, 499999);
    q10.kind = QueryKind::Aggregate;
    q10.groupBy = A("thousandth");

    engine::Query q11 = between("num", 0, 999);
    q11.kind = QueryKind::Join;
    q11.joinLeftAttr = A("nested_obj.str");
    q11.joinRightAttr = A("str1");

    struct Case
    {
        const char *name;
        const char *sql;
        engine::Query q;
    };
    std::vector<Case> cases = {
        {"Q1", "SELECT str1, num FROM t", project("str1", "num")},
        {"Q2", "SELECT nested_obj.str, sparse_300 FROM t",
         project("nested_obj.str", "sparse_300")},
        {"Q3", "SELECT sparse_110, sparse_119 FROM t",
         project("sparse_110", "sparse_119")},
        {"Q4", "SELECT sparse_110, sparse_220 FROM t",
         project("sparse_110", "sparse_220")},
        {"Q5", "SELECT * FROM t WHERE str1 = 'str1_17'", q5},
        {"Q6", "SELECT * FROM t WHERE num BETWEEN 1000 AND 1999",
         between("num", 1000, 1999)},
        {"Q7", "SELECT * FROM t WHERE dyn1 BETWEEN 5000 AND 6999",
         between("dyn1", 5000, 6999)},
        {"Q8",
         "SELECT sparse_330, num FROM t WHERE 'arr_7' = ANY nested_arr",
         q8},
        {"Q9", "SELECT * FROM t WHERE sparse_300 = 'sparse_val_3'", q9},
        {"Q10",
         "SELECT COUNT(*) FROM t WHERE num BETWEEN 0 AND 499999 "
         "GROUP BY thousandth",
         q10},
        {"Q11",
         "SELECT * FROM t AS l INNER JOIN t AS r "
         "ON l.nested_obj.str = r.str1 WHERE l.num BETWEEN 0 AND 999",
         q11},
    };

    engine::Executor exec(*db);
    for (const Case &c : cases) {
        SCOPED_TRACE(c.name);
        ParseResult r = parse(c.sql, *data);
        ASSERT_TRUE(r.ok) << r.error;

        // Same template signature and bound operators...
        engine::PhysicalPlan parsed = engine::bindPlan(*db, r.query);
        engine::PhysicalPlan hand = engine::bindPlan(*db, c.q);
        EXPECT_EQ(parsed.signature, hand.signature);
        EXPECT_EQ(parsed.key, hand.key);
        EXPECT_EQ(parsed.describe(*db).substr(parsed.describe(*db)
                                                  .find('\n')),
                  hand.describe(*db).substr(hand.describe(*db)
                                                .find('\n')));

        // ...and bit-identical results through the pre-bound API.
        EXPECT_EQ(exec.execute(parsed, r.query).digest(),
                  exec.execute(hand, c.q).digest());
    }
}

TEST_F(SqlWorld, InsertRoundTripQ12)
{
    // SQL ingests via LOAD; the executable bulk insert (Q12) is built
    // programmatically and runs through the same plan surface.
    ParseResult r = parse(
        "LOAD DATA LOCAL INFILE 'new.json' REPLACE INTO TABLE t",
        *data);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.kind, StatementKind::Load);

    nobench::Config small = cfg;
    small.numDocs = 40;
    engine::DataSet ds = nobench::generateDataSet(small);
    engine::Database local(
        ds, layout::Layout::fixedSize(ds.catalog.allAttrs(), 12),
        "sql");
    size_t before = local.docCount();

    Rng rng(41);
    std::vector<storage::Document> extra;
    for (int i = 0; i < 8; ++i) {
        ds.addObject(nobench::generateDoc(
            small, rng, static_cast<int64_t>(ds.docs.size())));
        extra.push_back(ds.docs.back());
    }
    nobench::QuerySet qs(ds, small);
    engine::Query q12 = qs.insertQuery(&extra);

    engine::PhysicalPlan plan = engine::bindPlan(local, q12);
    EXPECT_EQ(plan.kind, QueryKind::Insert);
    engine::Executor exec(local);
    exec.execute(plan, q12);
    EXPECT_EQ(local.docCount(), before + 8);
}

// ---------------------------------------------------------------------
// Error paths.
// ---------------------------------------------------------------------

TEST_F(SqlWorld, BetweenErrorPaths)
{
    ParseResult r =
        parse("SELECT * FROM t WHERE num BETWEEN 'a' AND 9", *data);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("expected integer after BETWEEN"),
              std::string::npos);

    r = parse("SELECT * FROM t WHERE num BETWEEN 1 9", *data);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("expected AND"), std::string::npos);

    r = parse("SELECT * FROM t WHERE num BETWEEN 1 AND 'z'", *data);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("expected integer after AND"),
              std::string::npos);
}

TEST_F(SqlWorld, UnknownGroupByColumnIsAnError)
{
    // Unlike SELECT/WHERE columns (all-NULL semantics), an unknown
    // grouping column would panic the engine's aggregate invariant, so
    // the parser rejects it.
    ParseResult r =
        parse("SELECT COUNT(*) FROM t GROUP BY ghost", *data);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("unknown GROUP BY column"),
              std::string::npos);

    r = parse("SELECT COUNT(*) FROM t", *data);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("COUNT(*) requires GROUP BY"),
              std::string::npos);
}

TEST_F(SqlWorld, SelectivityEstimates)
{
    // Projection -> 1.
    ParseResult proj = parse("SELECT num FROM t", *data);
    EXPECT_DOUBLE_EQ(proj.query.selectivity, 1.0);

    // Half-range BETWEEN -> ~0.5.
    ParseResult half = parse(
        "SELECT * FROM t WHERE num BETWEEN 0 AND 499999", *data);
    EXPECT_NEAR(half.query.selectivity, 0.5, 0.1);

    // Never-matching literal -> floored at 1/n, not 0.
    ParseResult none =
        parse("SELECT * FROM t WHERE str1 = 'nope'", *data);
    EXPECT_GT(none.query.selectivity, 0.0);
    EXPECT_LE(none.query.selectivity, 1.0 / 700);
}

} // namespace
} // namespace dvp::sql
