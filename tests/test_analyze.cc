/**
 * @file
 * Tests for request-scoped observability: QueryStats collection
 * (EXPLAIN ANALYZE), its exact reconciliation with the exported
 * Prometheus counters, work-counter determinism across thread counts
 * and plain/compressed storage, plan-source provenance, the SQL
 * EXPLAIN ANALYZE rendering, and the wire TLV extension round-trip.
 */

#include <gtest/gtest.h>

#include "adaptive/adaptive_engine.hh"
#include "engine/database.hh"
#include "engine/executor.hh"
#include "engine/plan.hh"
#include "engine/plan_cache.hh"
#include "engine/query_stats.hh"
#include "net/wire.hh"
#include "nobench/generator.hh"
#include "nobench/queries.hh"
#include "nobench/workload.hh"
#include "obs/metrics.hh"
#include "sql/run.hh"

namespace dvp::engine
{
namespace
{

/** Shared NoBench world with a plain and a compressed database. */
class AnalyzeWorld : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        // Past 2x kZoneRows so the compressed twin seals real blocks
        // (compressed predicate evaluation needs full 2048-row seals).
        cfg.numDocs = 4608;
        cfg.seed = 6021;
        data = new DataSet(nobench::generateDataSet(cfg));
        qs = new nobench::QuerySet(*data, cfg);
        auto attrs = data->catalog.allAttrs();
        plain = new Database(*data, layout::Layout::fixedSize(attrs, 12),
                             "fixedSize");
        compressed = new Database(
            *data, layout::Layout::fixedSize(attrs, 12), "fixedSizeC",
            /*allow_pad=*/true, nullptr, /*compress=*/true);
    }
    static void
    TearDownTestSuite()
    {
        delete compressed;
        delete plain;
        delete qs;
        delete data;
        compressed = plain = nullptr;
        qs = nullptr;
        data = nullptr;
    }

    /** One fixed-literal instance of each executable template. */
    static std::vector<Query>
    templates()
    {
        Rng rng(17);
        std::vector<Query> qv;
        for (int i = 0; i < nobench::kNumTemplates; ++i)
            qv.push_back(qs->instantiate(i, rng));
        return qv;
    }

    static nobench::Config cfg;
    static DataSet *data;
    static nobench::QuerySet *qs;
    static Database *plain, *compressed;
};

nobench::Config AnalyzeWorld::cfg;
DataSet *AnalyzeWorld::data = nullptr;
nobench::QuerySet *AnalyzeWorld::qs = nullptr;
Database *AnalyzeWorld::plain = nullptr;
Database *AnalyzeWorld::compressed = nullptr;

// ---------------------------------------------------------------------
// Stats collection and counter reconciliation.
// ---------------------------------------------------------------------

TEST_F(AnalyzeWorld, StatsFilledAndReconcileWithCounters)
{
    Executor exec(*plain, /*threads=*/2);
    exec.setMorselRows(256);
    auto &reg = obs::Registry::global();
    const std::string layout = plain->name();

    for (const Query &q : templates()) {
        SCOPED_TRACE(q.name);
#ifndef DVP_OBS_DISABLED
        uint64_t rows0 =
            reg.counter("dvp_rows_scanned_total{layout=\"" + layout +
                        "\"}")
                .value();
        uint64_t touch0 =
            reg.counter("dvp_partition_touches_total{layout=\"" +
                        layout + "\"}")
                .value();
        uint64_t morsels0 = reg.counter("dvp_morsels_total").value();
        uint64_t bscan0 =
            reg.counter("dvp_blocks_scanned_total").value();
        uint64_t bskip0 =
            reg.counter("dvp_blocks_skipped_total").value();
        uint64_t queries0 = reg.counter("dvp_queries_total").value();
#endif

        QueryStats s;
        ResultSet rs = exec.run(q, &s);

        // The stats describe exactly this execution.
        EXPECT_EQ(s.rowsOut, rs.rowCount());
        EXPECT_EQ(s.threads, 2u);
        EXPECT_EQ(s.planEpoch, plain->epoch());
        EXPECT_EQ(s.layoutFingerprint, plain->layoutFingerprint());
        EXPECT_GT(s.execNs, 0u);

#ifndef DVP_OBS_DISABLED
        // ...and reconcile exactly with the Prometheus counter deltas:
        // both views are filled from the same merged lane counters.
        EXPECT_EQ(reg.counter("dvp_rows_scanned_total{layout=\"" +
                              layout + "\"}")
                          .value() -
                      rows0,
                  s.rowsScanned);
        EXPECT_EQ(reg.counter("dvp_partition_touches_total{layout=\"" +
                              layout + "\"}")
                          .value() -
                      touch0,
                  s.partitionTouches);
        EXPECT_EQ(reg.counter("dvp_morsels_total").value() - morsels0,
                  s.morsels);
        EXPECT_EQ(reg.counter("dvp_blocks_scanned_total").value() -
                      bscan0,
                  s.blocksScanned);
        EXPECT_EQ(reg.counter("dvp_blocks_skipped_total").value() -
                      bskip0,
                  s.blocksSkipped);
        EXPECT_EQ(reg.counter("dvp_queries_total").value() - queries0,
                  1u);
#endif
    }
}

TEST_F(AnalyzeWorld, SummaryHasFixedKeyOrder)
{
    Executor exec(*plain);
    QueryStats s;
    exec.run(templates()[0], &s);
    auto kv = s.summary();
    ASSERT_GE(kv.size(), 5u);
    EXPECT_EQ(kv[0].first, "exec_ns");
    EXPECT_EQ(kv[1].first, "plan_ns");
    // Fixed order lets decoded summaries diff cleanly across requests.
    std::vector<std::string> keys;
    for (const auto &[k, v] : kv)
        keys.push_back(k);
    auto at = [&](const std::string &k) {
        for (size_t i = 0; i < kv.size(); ++i)
            if (kv[i].first == k)
                return kv[i].second;
        ADD_FAILURE() << "missing summary key " << k;
        return uint64_t{0};
    };
    EXPECT_EQ(at("rows_out"), s.rowsOut);
    EXPECT_EQ(at("rows_scanned"), s.rowsScanned);
    EXPECT_EQ(at("threads"), s.threads);
    EXPECT_EQ(at("plan_source"),
              static_cast<uint64_t>(s.planSource));
}

// ---------------------------------------------------------------------
// Determinism: work counters identical at every thread count, on both
// plain and compressed storage; results digest-identical.
// ---------------------------------------------------------------------

TEST_F(AnalyzeWorld, WorkCountersDeterministicAcrossThreads)
{
    for (Database *db : {plain, compressed}) {
        for (const Query &q : templates()) {
            SCOPED_TRACE(db->name() + " / " + q.name);

            Executor serial(*db, 1);
            QueryStats base;
            ResultSet rs0 = serial.run(q, &base);

            for (size_t threads : {2u, 4u, 8u}) {
                Executor par(*db, threads);
                QueryStats s;
                ResultSet rs = par.run(q, &s);

                // Bit-identical results...
                EXPECT_EQ(rs.digest(), rs0.digest());
                EXPECT_EQ(rs.checksum, rs0.checksum);

                // ...and identical work counters (the morsel count and
                // wall times are per-run measurements, not checked).
                EXPECT_EQ(s.rowsScanned, base.rowsScanned);
                EXPECT_EQ(s.partitionTouches, base.partitionTouches);
                EXPECT_EQ(s.blocksScanned, base.blocksScanned);
                EXPECT_EQ(s.blocksSkipped, base.blocksSkipped);
                EXPECT_EQ(s.matches, base.matches);
                EXPECT_EQ(s.rowsOut, base.rowsOut);
                for (size_t i = 0; i < 4; ++i)
                    EXPECT_EQ(s.compressedEval[i],
                              base.compressedEval[i]);
                EXPECT_EQ(s.threads, threads);
            }
        }
    }
}

TEST_F(AnalyzeWorld, CompressedDatabaseReportsCompressedEval)
{
    // On the compressed database at least one template answers
    // predicates on the compressed form; on the plain one, none do.
    Executor cexec(*compressed, 1);
    Executor pexec(*plain, 1);
    uint64_t compressed_total = 0, plain_total = 0;
    for (const Query &q : templates()) {
        QueryStats cs, ps;
        cexec.run(q, &cs);
        pexec.run(q, &ps);
        compressed_total += cs.compressedEvalTotal();
        plain_total += ps.compressedEvalTotal();
    }
    EXPECT_GT(compressed_total, 0u);
    EXPECT_EQ(plain_total, 0u);
}

// ---------------------------------------------------------------------
// Plan provenance.
// ---------------------------------------------------------------------

TEST_F(AnalyzeWorld, PlanSourceProvenance)
{
    Query q = templates()[0];

    // No cache attached: every run binds a private plan.
    Executor adhoc(*plain);
    QueryStats s;
    adhoc.run(q, &s);
    EXPECT_EQ(s.planSource, PlanSource::AdHoc);
    EXPECT_STREQ(planSourceName(s.planSource), "adhoc");

    // With a cache: first execution misses, repeats hit.
    PlanCache cache;
    Executor cached(*plain);
    cached.setPlanCache(&cache);
    cached.run(q, &s);
    EXPECT_EQ(s.planSource, PlanSource::CacheMiss);
    EXPECT_STREQ(planSourceName(s.planSource), "miss");
    cached.run(q, &s);
    EXPECT_EQ(s.planSource, PlanSource::CacheHit);
    EXPECT_STREQ(planSourceName(s.planSource), "hit");

    // Caller-held plan: provenance says so, and plan time is zero by
    // definition (binding happened outside the measured execution).
    PhysicalPlan plan = bindPlan(*plain, q);
    cached.execute(plan, q, &s);
    EXPECT_EQ(s.planSource, PlanSource::PreBound);
    EXPECT_STREQ(planSourceName(s.planSource), "prebound");
    EXPECT_EQ(s.planNs, 0u);
}

// ---------------------------------------------------------------------
// SQL surface: EXPLAIN ANALYZE through runStatement.
// ---------------------------------------------------------------------

TEST(AnalyzeSql, ExplainAnalyzeRendersExecutionSection)
{
    nobench::Config cfg;
    cfg.numDocs = 400;
    cfg.seed = 31;
    DataSet data = nobench::generateDataSet(cfg);
    nobench::QuerySet qs(data, cfg);
    Rng wrng(1);
    auto initial =
        nobench::representatives(qs, nobench::Mix::uniform(), wrng);
    adaptive::Params prm;
    prm.background = false;
    prm.adapt = false;
    adaptive::AdaptiveEngine eng(data, initial, prm);

    // Plain EXPLAIN: no execution, no stats.
    sql::RunResult plain = sql::runStatement(
        eng, "EXPLAIN SELECT str1, num FROM nobench_main");
    ASSERT_TRUE(plain.ok) << plain.error;
    EXPECT_FALSE(plain.hasStats);
    EXPECT_EQ(plain.message.find("execution:"), std::string::npos);

    // EXPLAIN ANALYZE: really executes, renders the measured run.
    sql::RunResult an = sql::runStatement(
        eng, "EXPLAIN ANALYZE SELECT str1, num FROM nobench_main");
    ASSERT_TRUE(an.ok) << an.error;
    EXPECT_TRUE(an.hasStats);
    EXPECT_NE(an.message.find("plan:"), std::string::npos);
    EXPECT_NE(an.message.find("execution:"), std::string::npos);
    EXPECT_NE(an.message.find("rows out"), std::string::npos);
    EXPECT_NE(an.message.find("result:"), std::string::npos);
    EXPECT_GT(an.stats.rowsOut, 0u);

    // A regular SELECT also carries stats (for the wire summary).
    sql::RunResult sel = sql::runStatement(
        eng, "SELECT str1, num FROM nobench_main");
    ASSERT_TRUE(sel.ok) << sel.error;
    EXPECT_TRUE(sel.hasStats);
    EXPECT_EQ(sel.stats.rowsOut, sel.rows.rowCount());
    // The ANALYZE run and the real run did the same work.
    EXPECT_EQ(an.stats.rowsScanned, sel.stats.rowsScanned);
    EXPECT_EQ(an.stats.rowsOut, sel.stats.rowsOut);
}

// ---------------------------------------------------------------------
// Adaptive audit ring.
// ---------------------------------------------------------------------

TEST(AnalyzeAudit, InitialDecisionAndRepartitionAreAudited)
{
    nobench::Config cfg;
    cfg.numDocs = 800;
    cfg.seed = 99;
    DataSet data = nobench::generateDataSet(cfg);
    nobench::QuerySet qs(data, cfg);
    Rng wrng(1);
    auto initial =
        nobench::representatives(qs, nobench::Mix::uniform(), wrng);

    adaptive::Params prm;
    prm.background = false;
    prm.window = 40;
    prm.changeThreshold = 0.4;
    adaptive::AdaptiveEngine eng(data, initial, prm);

    // Construction records the initial partitioning decision.
    auto trail = eng.auditTrail();
    ASSERT_EQ(trail.size(), 1u);
    EXPECT_EQ(trail[0].trigger, "initial");
    EXPECT_GT(trail[0].tables, 0u);
    EXPECT_EQ(trail[0].layoutFingerprint,
              eng.snapshot()->layoutFingerprint());
    EXPECT_GT(trail[0].buildNs, 0u);

    // Drive a workload shift until a repartition fires.
    Rng rng(7);
    for (int i = 0; i < 80; ++i)
        eng.execute(qs.instantiate(i % nobench::kNumTemplates, rng));
    for (int i = 0; i < 120; ++i)
        eng.execute(
            qs.instantiateShifted(i % nobench::kNumTemplates, rng));
    ASSERT_GE(eng.adaptation().repartitions, 1u);

    trail = eng.auditTrail();
    ASSERT_GE(trail.size(), 2u);
    const auto &last = trail.back();
    EXPECT_NE(last.trigger, "initial");
    EXPECT_FALSE(last.trigger.empty());
    EXPECT_GT(last.seq, trail.front().seq);
    EXPECT_EQ(last.layoutFingerprint,
              eng.snapshot()->layoutFingerprint());
    EXPECT_GT(last.swapNs, 0u);
    EXPECT_GT(last.buildNs, 0u);
}

// ---------------------------------------------------------------------
// Wire TLV extensions.
// ---------------------------------------------------------------------

TEST(AnalyzeWire, QueryTraceIdRoundTripsAtFeatureTrace)
{
    net::QueryBody q;
    q.sql = "SELECT num FROM t";
    q.hasTraceId = true;
    q.traceId = 0xdeadbeefcafe1234ull;

    std::string enc = net::encodeQuery(q, net::kFeatureTrace);
    net::QueryBody out;
    ASSERT_TRUE(net::decodeQuery(enc, out));
    EXPECT_EQ(out.sql, q.sql);
    EXPECT_TRUE(out.hasTraceId);
    EXPECT_EQ(out.traceId, q.traceId);
}

TEST(AnalyzeWire, BaseLevelEncodingIsLegacyByteIdentical)
{
    // A level-1 encode must be byte-identical to a pre-TLV client's
    // frame even when the caller set a trace id, so old servers (which
    // require the body exhausted) keep accepting it.
    net::QueryBody legacy;
    legacy.sql = "SELECT num FROM t";
    std::string legacy_bytes =
        net::encodeQuery(legacy, net::kFeatureBase);

    net::QueryBody traced = legacy;
    traced.hasTraceId = true;
    traced.traceId = 42;
    EXPECT_EQ(net::encodeQuery(traced, net::kFeatureBase),
              legacy_bytes);

    net::QueryBody out;
    ASSERT_TRUE(net::decodeQuery(legacy_bytes, out));
    EXPECT_FALSE(out.hasTraceId);
}

TEST(AnalyzeWire, ResultExtrasRoundTripAndDegrade)
{
    net::ResultBody r;
    r.kind = net::ResultBody::Kind::Message;
    r.message = "ok";
    r.execNs = 12345;
    r.hasTraceId = true;
    r.traceId = 7;
    r.opStats = {{"rows_scanned", 800}, {"rows_out", 12}};

    // Level 2: extras survive the round trip.
    std::string enc2 = net::encodeResult(r, net::kFeatureTrace);
    net::ResultBody out2;
    ASSERT_TRUE(net::decodeResult(enc2, out2));
    EXPECT_TRUE(out2.hasTraceId);
    EXPECT_EQ(out2.traceId, 7u);
    ASSERT_EQ(out2.opStats.size(), 2u);
    EXPECT_EQ(out2.opStats[0].first, "rows_scanned");
    EXPECT_EQ(out2.opStats[0].second, 800u);
    EXPECT_EQ(out2.execNs, 12345u);

    // Level 1: extras dropped, frame still decodes cleanly.
    std::string enc1 = net::encodeResult(r, net::kFeatureBase);
    EXPECT_LT(enc1.size(), enc2.size());
    net::ResultBody out1;
    ASSERT_TRUE(net::decodeResult(enc1, out1));
    EXPECT_FALSE(out1.hasTraceId);
    EXPECT_TRUE(out1.opStats.empty());
    EXPECT_EQ(out1.execNs, 12345u);
}

TEST(AnalyzeWire, UnknownTlvTagsAreSkipped)
{
    // Forward compatibility: a newer peer may append tags we do not
    // know; decoders must skip them and keep what they understand.
    net::QueryBody q;
    q.sql = "SELECT num FROM t";
    q.hasTraceId = true;
    q.traceId = 99;
    std::string enc = net::encodeQuery(q, net::kFeatureTrace);

    // Append an unknown TLV by hand: u8 tag + u32 length + payload.
    std::string extra;
    extra.push_back(static_cast<char>(0x7f)); // unknown tag
    extra.push_back(3);                       // u32 length, LE
    extra.push_back(0);
    extra.push_back(0);
    extra.push_back(0);
    extra += "xyz";
    enc += extra;

    net::QueryBody out;
    ASSERT_TRUE(net::decodeQuery(enc, out));
    EXPECT_EQ(out.sql, q.sql);
    EXPECT_TRUE(out.hasTraceId);
    EXPECT_EQ(out.traceId, 99u);
}

} // namespace
} // namespace dvp::engine
