/**
 * @file
 * Tests for the durability subsystem (src/durability): WAL framing,
 * segment roll + GC, torn-tail truncation at every byte offset of a
 * record, manifest CRC + atomic replacement under injected faults,
 * and end-to-end checkpoint/recover cycles through the adaptive
 * engine asserting prefix-consistent recovery with query digests
 * bit-identical to a never-crashed reference.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <thread>
#include <unistd.h>
#include <vector>

#include "adaptive/adaptive_engine.hh"
#include "durability/manager.hh"
#include "durability/manifest.hh"
#include "durability/wal.hh"
#include "json/flatten.hh"
#include "nobench/generator.hh"
#include "nobench/queries.hh"
#include "persist/snapshot.hh"
#include "sql/run.hh"
#include "util/fault.hh"
#include "util/random.hh"

namespace fs = std::filesystem;

namespace dvp::durability
{
namespace
{

/** Unique scratch directory, removed (with contents) on scope exit. */
struct TempDir
{
    std::string path;

    TempDir()
    {
        static std::atomic<uint64_t> counter{0};
        path = (fs::temp_directory_path() /
                ("dvp_dur_" + std::to_string(::getpid()) + "_" +
                 std::to_string(counter.fetch_add(1))))
                   .string();
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
};

/** The one small document shape the byte-sweep tests ingest. */
json::JsonValue
tinyDoc(int64_t i)
{
    json::JsonValue doc = json::JsonValue::makeObject();
    doc.set("a", json::JsonValue(i));
    doc.set("s", json::JsonValue(std::string("v") +
                                 std::to_string(i % 7)));
    return doc;
}

/** Q1..Q11 digests, instantiated deterministically against @p data. */
std::vector<uint64_t>
elevenDigests(adaptive::AdaptiveEngine &eng,
              const engine::DataSet &data, const nobench::Config &cfg)
{
    nobench::QuerySet qs(data, cfg);
    Rng rng(4242);
    std::vector<uint64_t> out;
    for (int i = 0; i < nobench::kNumTemplates; ++i)
        out.push_back(eng.execute(qs.instantiate(i, rng)).digest());
    return out;
}

adaptive::Params
quietParams()
{
    adaptive::Params p;
    p.background = false;
    p.adapt = false; // keep digest runs deterministic
    return p;
}

// ---------------------------------------------------------------------
// WAL
// ---------------------------------------------------------------------

TEST(Wal, ParseFsyncPolicy)
{
    FsyncPolicy p = FsyncPolicy::None;
    EXPECT_TRUE(parseFsyncPolicy("always", p));
    EXPECT_EQ(p, FsyncPolicy::Always);
    EXPECT_TRUE(parseFsyncPolicy("interval", p));
    EXPECT_EQ(p, FsyncPolicy::Interval);
    EXPECT_TRUE(parseFsyncPolicy("none", p));
    EXPECT_EQ(p, FsyncPolicy::None);
    EXPECT_FALSE(parseFsyncPolicy("sometimes", p));
    EXPECT_STREQ(fsyncPolicyName(FsyncPolicy::Always), "always");
}

TEST(Wal, AppendScanRoundTrip)
{
    TempDir dir;
    WalOptions opts;
    opts.policy = FsyncPolicy::None;
    Wal wal(dir.path, opts);
    ASSERT_EQ(wal.create(1), "");

    ASSERT_EQ(wal.append(RecordType::Ingest, "alpha"), 1u);
    ASSERT_EQ(wal.append(RecordType::Swap, "beta"), 2u);
    ASSERT_EQ(wal.append(RecordType::Ingest, ""), 3u);
    EXPECT_EQ(wal.appendedLsn(), 3u);
    EXPECT_EQ(wal.durableLsn(), 3u); // policy None: durable == appended

    SegmentScan scan =
        scanSegmentFile(dir.path + "/" + segmentFileName(1));
    ASSERT_EQ(scan.error, "");
    EXPECT_FALSE(scan.torn);
    ASSERT_EQ(scan.records.size(), 3u);
    EXPECT_EQ(scan.records[0].type, RecordType::Ingest);
    EXPECT_EQ(scan.records[0].lsn, 1u);
    EXPECT_EQ(scan.records[0].body, "alpha");
    EXPECT_EQ(scan.records[1].type, RecordType::Swap);
    EXPECT_EQ(scan.records[1].body, "beta");
    EXPECT_EQ(scan.records[2].body, "");
}

TEST(Wal, SegmentRollAndGc)
{
    TempDir dir;
    WalOptions opts;
    opts.policy = FsyncPolicy::None;
    opts.segmentBytes = 64; // roll after every record or two
    Wal wal(dir.path, opts);
    ASSERT_EQ(wal.create(1), "");

    std::string body(40, 'x');
    for (int i = 0; i < 10; ++i)
        ASSERT_NE(wal.append(RecordType::Ingest, body), 0u);
    std::vector<std::string> segs = wal.liveSegments();
    ASSERT_GT(segs.size(), 2u);

    // Everything up to LSN 10 is "checkpointed": all but the active
    // segment becomes garbage.
    size_t removed = wal.gcCoveredBy(10);
    EXPECT_EQ(removed, segs.size() - 1);
    EXPECT_EQ(wal.liveSegments().size(), 1u);
    // The survivors still scan clean and the WAL still appends.
    EXPECT_EQ(wal.append(RecordType::Ingest, body), 11u);

    // A target below the second segment's first LSN removes nothing.
    EXPECT_EQ(wal.gcCoveredBy(0), 0u);
}

TEST(Wal, TornTailDetectedAtEveryByteOffset)
{
    TempDir dir;
    WalOptions opts;
    opts.policy = FsyncPolicy::None;
    Wal wal(dir.path, opts);
    ASSERT_EQ(wal.create(1), "");
    ASSERT_EQ(wal.append(RecordType::Ingest, "first record"), 1u);
    ASSERT_EQ(wal.append(RecordType::Ingest, "second record"), 2u);
    ASSERT_EQ(wal.append(RecordType::Swap, "final record body"), 3u);

    std::string seg = dir.path + "/" + segmentFileName(1);
    std::ifstream in(seg, std::ios::binary);
    std::string full((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    in.close();
    const uint64_t frame3 =
        kRecordPrefixBytes + 9 + std::string("final record body").size();
    const uint64_t intact = full.size() - frame3;

    // Kill the write at every byte of the final record: the scan must
    // land exactly on the end of record 2, flagged torn unless the cut
    // is at a record boundary.
    for (uint64_t cut = intact; cut <= full.size(); ++cut) {
        std::string t = dir.path + "/torn";
        fs::remove(t);
        fs::copy_file(seg, t);
        fs::resize_file(t, cut);
        SegmentScan scan = scanSegmentFile(t);
        ASSERT_EQ(scan.error, "") << "cut at " << cut;
        ASSERT_EQ(scan.validBytes,
                  cut == full.size() ? full.size() : intact)
            << "cut at " << cut;
        EXPECT_EQ(scan.torn, cut != intact && cut != full.size())
            << "cut at " << cut;
        ASSERT_EQ(scan.records.size(), cut == full.size() ? 3u : 2u)
            << "cut at " << cut;
        if (!scan.records.empty()) {
            EXPECT_EQ(scan.records[0].body, "first record");
            EXPECT_EQ(scan.records[1].body, "second record");
        }
    }
}

TEST(Wal, FaultInjectedAppendThenContinueAt)
{
    // Crash a real append at every byte offset via the injector, then
    // recover the segment with continueAt and keep appending.
    const std::string body = "crash me";
    const uint64_t frame = kRecordPrefixBytes + 9 + body.size();

    for (uint64_t budget = 0; budget < frame; ++budget) {
        TempDir dir;
        WalOptions opts;
        opts.policy = FsyncPolicy::None;
        uint64_t intact;
        {
            Wal wal(dir.path, opts);
            ASSERT_EQ(wal.create(1), "");
            ASSERT_EQ(wal.append(RecordType::Ingest, "survivor"), 1u);
            SegmentScan pre = scanSegmentFile(
                dir.path + "/" + segmentFileName(1));
            intact = pre.validBytes;

            FaultInjector::global().arm(budget);
            EXPECT_EQ(wal.append(RecordType::Ingest, body), 0u)
                << "budget " << budget;
            FaultInjector::global().disarm();
            EXPECT_TRUE(wal.failed());
            // A failed WAL refuses everything after (latched).
            EXPECT_EQ(wal.append(RecordType::Ingest, "no"), 0u);
        }

        SegmentScan scan =
            scanSegmentFile(dir.path + "/" + segmentFileName(1));
        ASSERT_EQ(scan.error, "") << "budget " << budget;
        ASSERT_EQ(scan.records.size(), 1u) << "budget " << budget;
        EXPECT_EQ(scan.records[0].body, "survivor");
        EXPECT_EQ(scan.validBytes, intact);
        EXPECT_EQ(scan.torn, budget != 0);

        // Recovery path: truncate the torn tail, resume at LSN 2.
        Wal wal2(dir.path, opts);
        ASSERT_EQ(wal2.continueAt(segmentFileName(1), scan.validBytes,
                                  2),
                  "");
        ASSERT_EQ(wal2.append(RecordType::Ingest, "after crash"), 2u);
        SegmentScan post =
            scanSegmentFile(dir.path + "/" + segmentFileName(1));
        ASSERT_EQ(post.records.size(), 2u) << "budget " << budget;
        EXPECT_FALSE(post.torn);
        EXPECT_EQ(post.records[1].body, "after crash");
        EXPECT_EQ(post.records[1].lsn, 2u);
    }
}

// ---------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------

TEST(Manifest, RoundTripAndCrcReject)
{
    Manifest m;
    m.seq = 42;
    m.snapshotFile = "snapshot-00000000000000000007.snap";
    m.snapshotLsn = 7;
    m.epoch = 3;
    m.segments = {"wal-00000000000000000008.seg"};

    std::string bytes = encodeManifest(m);
    Manifest back;
    ASSERT_EQ(decodeManifest(bytes, back), "");
    EXPECT_EQ(back.seq, 42u);
    EXPECT_EQ(back.snapshotFile, m.snapshotFile);
    EXPECT_EQ(back.snapshotLsn, 7u);
    EXPECT_EQ(back.epoch, 3u);
    EXPECT_EQ(back.segments, m.segments);

    for (size_t i = 0; i < bytes.size(); ++i) {
        std::string bad = bytes;
        bad[i] ^= 0x40;
        Manifest junk;
        EXPECT_NE(decodeManifest(bad, junk), "") << "flip at " << i;
    }
    EXPECT_NE(decodeManifest(bytes.substr(0, bytes.size() - 1), back),
              "");
}

TEST(Manifest, AtomicReplaceSurvivesFaultAtEveryByte)
{
    TempDir dir;
    fs::create_directories(dir.path);
    Manifest oldm;
    oldm.seq = 1;
    ASSERT_EQ(storeManifest(dir.path, oldm), "");

    Manifest newm;
    newm.seq = 2;
    newm.snapshotFile = "snapshot-00000000000000000009.snap";
    newm.snapshotLsn = 9;
    const size_t total = encodeManifest(newm).size();

    // Kill the rewrite at every byte (including the pre-rename gate at
    // budget == total): the directory must always hold a valid
    // manifest — the old one until the rename, the new one after.
    for (size_t budget = 0; budget <= total + 1; ++budget) {
        FaultInjector::global().arm(budget);
        std::string err = storeManifest(dir.path, newm);
        FaultInjector::global().disarm();

        Manifest got;
        ASSERT_EQ(loadManifest(dir.path, got), "")
            << "budget " << budget;
        if (err.empty()) {
            EXPECT_EQ(got.seq, 2u) << "budget " << budget;
        } else {
            EXPECT_EQ(got.seq, 1u) << "budget " << budget;
        }
    }
}

// ---------------------------------------------------------------------
// Snapshot v2 meta
// ---------------------------------------------------------------------

TEST(SnapshotMeta, RoundTripThroughV2Image)
{
    nobench::Config cfg;
    cfg.numDocs = 50;
    cfg.seed = 11;
    engine::DataSet data = nobench::generateDataSet(cfg);

    persist::SnapshotMeta meta;
    meta.epoch = 7;
    meta.baseDocs = 40;
    meta.walLsn = 123;
    std::string bytes = persist::serialize(data, nullptr, &meta);
    persist::LoadResult r = persist::deserialize(bytes);
    ASSERT_TRUE(r.ok) << r.error;
    ASSERT_TRUE(r.meta.has_value());
    EXPECT_EQ(r.meta->epoch, 7u);
    EXPECT_EQ(r.meta->baseDocs, 40u);
    EXPECT_EQ(r.meta->walLsn, 123u);

    // baseDocs beyond the document count is structural corruption.
    meta.baseDocs = 51;
    r = persist::deserialize(persist::serialize(data, nullptr, &meta));
    EXPECT_FALSE(r.ok);
}

// ---------------------------------------------------------------------
// Manager end to end
// ---------------------------------------------------------------------

/** A durable engine over a fresh data directory seeded with NoBench. */
struct DurableWorld
{
    TempDir dir;
    nobench::Config cfg;
    engine::DataSet data;
    std::unique_ptr<Manager> mgr;
    std::unique_ptr<adaptive::AdaptiveEngine> engine;

    explicit DurableWorld(size_t docs, adaptive::Params params,
                          Config dcfg = {})
    {
        cfg.numDocs = docs;
        cfg.seed = 99;
        data = nobench::generateDataSet(cfg);
        dcfg.dir = dir.path;
        if (dcfg.fsyncPolicy == FsyncPolicy::Always)
            dcfg.fsyncPolicy = FsyncPolicy::None; // tests: no fsync wait
        mgr = std::make_unique<Manager>(dcfg);
        RecoveryInfo info;
        std::string err = mgr->open(data, info);
        EXPECT_EQ(err, "");
        EXPECT_FALSE(info.recovered);
        engine = std::make_unique<adaptive::AdaptiveEngine>(
            data, std::vector<engine::Query>{}, params);
        engine->setDurability(mgr.get());
        CheckpointResult ck = mgr->checkpointNow();
        EXPECT_TRUE(ck.ok) << ck.error;
    }
};

/** Reopen @p dir and rebuild an engine exactly as dvpd boot does. */
struct RecoveredWorld
{
    engine::DataSet data;
    RecoveryInfo info;
    std::unique_ptr<Manager> mgr;
    std::unique_ptr<adaptive::AdaptiveEngine> engine;

    RecoveredWorld(const std::string &dir, adaptive::Params params)
    {
        Config dcfg;
        dcfg.dir = dir;
        dcfg.fsyncPolicy = FsyncPolicy::None;
        mgr = std::make_unique<Manager>(dcfg);
        std::string err = mgr->open(data, info);
        EXPECT_EQ(err, "");
        EXPECT_TRUE(info.recovered);
        if (info.layout) {
            adaptive::Restore r;
            r.layout = *info.layout;
            r.epoch = info.epoch;
            r.baseDocs = info.baseDocs;
            engine = adaptive::AdaptiveEngine::restore(
                data, std::move(r), params);
        } else {
            engine = std::make_unique<adaptive::AdaptiveEngine>(
                data, std::vector<engine::Query>{}, params);
        }
        engine->setDurability(mgr.get());
    }
};

TEST(Manager, FreshOpenRefusesStraySegments)
{
    TempDir dir;
    {
        WalOptions opts;
        opts.policy = FsyncPolicy::None;
        Wal wal(dir.path, opts);
        ASSERT_EQ(wal.create(1), "");
        ASSERT_EQ(wal.append(RecordType::Ingest, "x"), 1u);
    }
    fs::remove(dir.path + "/" + std::string(kManifestFile));

    Config dcfg;
    dcfg.dir = dir.path;
    Manager mgr(dcfg);
    engine::DataSet out;
    RecoveryInfo info;
    std::string err = mgr.open(out, info);
    EXPECT_NE(err.find("no manifest"), std::string::npos) << err;
}

TEST(Manager, CheckpointRecoverBitIdenticalDigests)
{
    adaptive::Params params = quietParams();
    std::vector<uint64_t> before;
    uint64_t epoch_before, docs_before;
    std::string dirpath;
    nobench::Config ncfg;
    {
        DurableWorld w(300, params);
        dirpath = w.dir.path;
        ncfg = w.cfg;

        // Acked ingests beyond the checkpoint live only in the WAL.
        Rng rng(7);
        std::vector<json::JsonValue> batch;
        for (int i = 0; i < 20; ++i)
            batch.push_back(nobench::generateDoc(w.cfg, rng, 300 + i));
        adaptive::IngestAck ack = w.engine->ingestBatch(batch);
        ASSERT_EQ(ack.walError, "");
        ASSERT_EQ(ack.totalDocs, 320u);

        before = elevenDigests(*w.engine, w.data, w.cfg);
        epoch_before = w.engine->snapshotFull().epoch;
        docs_before = ack.totalDocs;
        // Keep the directory alive past the TempDir destructor by
        // renaming it out from under w before teardown.
        fs::rename(w.dir.path, w.dir.path + ".keep");
    }
    fs::rename(dirpath + ".keep", dirpath);

    RecoveredWorld r(dirpath, params);
    EXPECT_EQ(r.data.docs.size(), docs_before);
    EXPECT_EQ(r.info.snapshotDocs, 300u);
    EXPECT_EQ(r.info.replayedDocs, 20u);
    EXPECT_EQ(r.engine->snapshotFull().epoch, epoch_before);
    EXPECT_EQ(elevenDigests(*r.engine, r.data, ncfg), before);
    fs::remove_all(dirpath);
}

// A checkpoint cut taken while the delta holds attributes no layout
// swap has folded yet carries a layout covering a strict subset of
// the catalog.  That snapshot must round-trip: recovery rebuilds the
// base from the partial layout and re-deltas the newer docs, and the
// delta-only attributes stay queryable.  (Regression: deserialize
// used to reject such images as "uncovered attribute".)
TEST(Manager, CheckpointWithDeltaOnlyAttributesRecovers)
{
    adaptive::Params params = quietParams(); // no fold, no swap
    std::vector<uint64_t> before;
    uint64_t tiny_before, epoch_before;
    std::string dirpath;
    nobench::Config ncfg;

    auto tinyProject = [](adaptive::AdaptiveEngine &eng,
                          const engine::DataSet &data) {
        engine::Query q;
        q.kind = engine::QueryKind::Project;
        q.projected = {data.catalog.find("a"), data.catalog.find("s")};
        q.frequency = 1.0;
        return eng.execute(q).digest();
    };

    {
        DurableWorld w(120, params);
        dirpath = w.dir.path;
        ncfg = w.cfg;

        // "a"/"s" exist in no NoBench doc: after these ingests the
        // catalog is wider than the (never-swapped) layout.
        for (int i = 0; i < 3; ++i)
            ASSERT_EQ(w.engine->ingestBatch({tinyDoc(i)}).walError, "");
        CheckpointResult ck = w.mgr->checkpointNow();
        ASSERT_TRUE(ck.ok) << ck.error;
        // One more acked ingest rides the WAL tail past the snapshot.
        ASSERT_EQ(w.engine->ingestBatch({tinyDoc(3)}).walError, "");

        before = elevenDigests(*w.engine, w.data, w.cfg);
        tiny_before = tinyProject(*w.engine, w.data);
        epoch_before = w.engine->snapshotFull().epoch;
        fs::rename(w.dir.path, w.dir.path + ".keep");
    }
    fs::rename(dirpath + ".keep", dirpath);

    RecoveredWorld r(dirpath, params);
    EXPECT_EQ(r.data.docs.size(), 124u);
    EXPECT_EQ(r.info.snapshotDocs, 123u);
    EXPECT_EQ(r.info.replayedDocs, 1u);
    EXPECT_EQ(r.engine->snapshotFull().epoch, epoch_before);
    EXPECT_EQ(elevenDigests(*r.engine, r.data, ncfg), before);
    EXPECT_EQ(tinyProject(*r.engine, r.data), tiny_before);
    fs::remove_all(dirpath);
}

TEST(Manager, RecoverAfterLayoutSwapRestoresEpochAndLayout)
{
    adaptive::Params params;
    params.background = false;
    params.adapt = true;
    params.deltaFoldRows = 16; // fold (and Swap-log) quickly

    std::vector<uint64_t> before;
    uint64_t epoch_before, base_before;
    std::string dirpath;
    nobench::Config ncfg;
    {
        DurableWorld w(200, params);
        dirpath = w.dir.path;
        ncfg = w.cfg;

        Rng rng(8);
        std::vector<json::JsonValue> batch;
        for (int i = 0; i < 40; ++i)
            batch.push_back(nobench::generateDoc(w.cfg, rng, 200 + i));
        adaptive::IngestAck ack = w.engine->ingestBatch(batch);
        ASSERT_EQ(ack.walError, "");

        // The fold ran synchronously: epoch advanced, delta drained,
        // and a Swap record hit the WAL.
        adaptive::Snapshot snap = w.engine->snapshotFull();
        ASSERT_GT(snap.epoch, 1u);
        ASSERT_EQ(snap.deltaRows, 0u);
        epoch_before = snap.epoch;
        base_before = snap.base->docCount();
        params.adapt = false; // deterministic digest run
        before = elevenDigests(*w.engine, w.data, w.cfg);
        fs::rename(w.dir.path, w.dir.path + ".keep");
    }
    fs::rename(dirpath + ".keep", dirpath);

    RecoveredWorld r(dirpath, quietParams());
    ASSERT_TRUE(r.info.layout.has_value());
    EXPECT_EQ(r.info.epoch, epoch_before);
    EXPECT_EQ(r.info.baseDocs, base_before);
    adaptive::Snapshot snap = r.engine->snapshotFull();
    EXPECT_EQ(snap.epoch, epoch_before);
    EXPECT_EQ(snap.base->docCount(), base_before);
    nobench::Config cfg = ncfg;
    EXPECT_EQ(elevenDigests(*r.engine, r.data, cfg), before);
    fs::remove_all(dirpath);
}

TEST(Manager, CrashInjectionPrefixConsistentAtEveryByte)
{
    // Sweep a crash across every byte of an ingest commit: whatever
    // the budget, recovery must land on a consistent prefix — every
    // *acked* batch present, digests identical to a never-crashed
    // reference fed the same prefix.
    adaptive::Params params = quietParams();
    nobench::Config ncfg;
    ncfg.numDocs = 60;
    ncfg.seed = 99;

    // Frame size of the batch we crash: prefix + type/lsn + body.
    std::vector<std::vector<json::FlatAttr>> crash_flat{
        json::flatten(tinyDoc(1000))};
    const uint64_t frame =
        kRecordPrefixBytes + 9 +
        Manager::encodeIngestBody(crash_flat).size();

    for (uint64_t budget = 0; budget <= frame; ++budget) {
        std::string dirpath;
        bool acked;
        {
            DurableWorld w(60, params);
            dirpath = w.dir.path;
            // Two clean batches after the seed checkpoint.
            for (int64_t b = 0; b < 2; ++b) {
                adaptive::IngestAck a =
                    w.engine->ingestBatch({tinyDoc(100 + b)});
                ASSERT_EQ(a.walError, "");
            }
            FaultInjector::global().arm(budget);
            adaptive::IngestAck a =
                w.engine->ingestBatch({tinyDoc(1000)});
            FaultInjector::global().disarm();
            acked = a.walError.empty();
            EXPECT_EQ(acked, budget >= frame) << "budget " << budget;
            fs::rename(w.dir.path, w.dir.path + ".keep");
        }
        fs::rename(dirpath + ".keep", dirpath);

        RecoveredWorld r(dirpath, params);
        size_t expect = 60 + 2 + (acked ? 1 : 0);
        ASSERT_EQ(r.data.docs.size(), expect) << "budget " << budget;

        // Never-crashed reference over the same prefix.
        engine::DataSet ref = nobench::generateDataSet(ncfg);
        for (int64_t b = 0; b < 2; ++b)
            ref.addFlat(json::flatten(tinyDoc(100 + b)));
        if (acked)
            ref.addFlat(json::flatten(tinyDoc(1000)));
        adaptive::AdaptiveEngine ref_eng(
            ref, std::vector<engine::Query>{}, params);
        EXPECT_EQ(elevenDigests(*r.engine, r.data, ncfg),
                  elevenDigests(ref_eng, ref, ncfg))
            << "budget " << budget;
        fs::remove_all(dirpath);
    }
}

TEST(Manager, CheckpointConcurrentWithQueriesAndIngest)
{
    adaptive::Params params;
    params.background = true;
    params.adapt = false;
    DurableWorld w(300, params);

    std::atomic<bool> stop{false};
    std::atomic<uint64_t> executed{0};
    std::vector<std::thread> readers;
    for (int t = 0; t < 3; ++t)
        readers.emplace_back([&, t] {
            nobench::QuerySet qs(w.data, w.cfg);
            Rng rng(100 + t);
            while (!stop.load(std::memory_order_relaxed)) {
                int idx = static_cast<int>(rng.below(11));
                w.engine->execute(qs.instantiate(idx, rng));
                executed.fetch_add(1, std::memory_order_relaxed);
            }
        });
    std::thread writer([&] {
        int64_t oid = 5000;
        while (!stop.load(std::memory_order_relaxed)) {
            adaptive::IngestAck a =
                w.engine->ingestBatch({tinyDoc(oid++)});
            ASSERT_EQ(a.walError, "");
        }
    });

    // Checkpoints run while queries and ingest hammer the engine;
    // serving never stalls beyond the cut copy.
    for (int i = 0; i < 5; ++i) {
        CheckpointResult ck = w.mgr->checkpointNow();
        ASSERT_TRUE(ck.ok) << ck.error;
    }
    stop.store(true);
    for (auto &th : readers)
        th.join();
    writer.join();
    EXPECT_GT(executed.load(), 0u);
    EXPECT_GE(w.mgr->stats().checkpoints.load(), 6u); // seed + 5
}

TEST(Manager, SqlCheckpointStatement)
{
    adaptive::Params params = quietParams();

    // Without durability the statement maps to Unsupported.
    {
        nobench::Config cfg;
        cfg.numDocs = 30;
        engine::DataSet plain = nobench::generateDataSet(cfg);
        adaptive::AdaptiveEngine eng(
            plain, std::vector<engine::Query>{}, params);
        sql::RunResult r = sql::runStatement(eng, "CHECKPOINT");
        EXPECT_FALSE(r.ok);
        EXPECT_EQ(r.errorKind, sql::RunResult::Error::Unsupported);
    }

    DurableWorld w(30, params);
    sql::RunResult r = sql::runStatement(*w.engine, "CHECKPOINT;");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_NE(r.message.find("CHECKPOINT (snapshot-"),
              std::string::npos)
        << r.message;
    EXPECT_EQ(w.mgr->stats().checkpoints.load(), 2u);
}

} // namespace
} // namespace dvp::durability
