/**
 * @file
 * Tests for the adaptive engine (src/adaptive) and the change detector
 * (src/stats): repartition triggering, atomic swaps, catch-up inserts,
 * and result consistency across layout changes.
 */

#include <gtest/gtest.h>

#include "adaptive/adaptive_engine.hh"
#include "nobench/generator.hh"
#include "nobench/queries.hh"
#include "nobench/workload.hh"
#include "stats/change_detector.hh"
#include "stats/workload_stats.hh"

namespace dvp::adaptive
{
namespace
{

using engine::Query;
using engine::ResultSet;

// ---------------------------------------------------------------------
// WorkloadStats.
// ---------------------------------------------------------------------

TEST(WorkloadStats, AccumulatesPerTemplate)
{
    stats::WorkloadStats ws;
    Query q;
    q.name = "Q1";
    ws.record(q, 0.010, 5, 100);
    ws.record(q, 0.020, 15, 100);
    ASSERT_EQ(ws.templates().count("Q1"), 1u);
    const auto &t = ws.templates().at("Q1");
    EXPECT_EQ(t.executions, 2u);
    EXPECT_NEAR(t.meanSeconds(), 0.015, 1e-9);
    EXPECT_NEAR(t.meanSelectivity(), 0.10, 1e-9);
    EXPECT_EQ(ws.executions(), 2u);
}

TEST(WorkloadStats, RepresentativesCarryObservedStats)
{
    stats::WorkloadStats ws;
    Query a, b;
    a.name = "A";
    b.name = "B";
    for (int i = 0; i < 3; ++i)
        ws.record(a, 0.001, 1, 100);
    ws.record(b, 0.001, 50, 100);
    auto reps = ws.representatives();
    ASSERT_EQ(reps.size(), 2u);
    for (const auto &q : reps) {
        if (q.name == "A") {
            EXPECT_NEAR(q.frequency, 0.75, 1e-9);
            EXPECT_NEAR(q.selectivity, 0.01, 1e-9);
        } else {
            EXPECT_NEAR(q.frequency, 0.25, 1e-9);
            EXPECT_NEAR(q.selectivity, 0.5, 1e-9);
        }
    }
}

TEST(WorkloadStats, ResetForgets)
{
    stats::WorkloadStats ws;
    Query q;
    q.name = "Q";
    ws.record(q, 0.1, 1, 1);
    ws.reset();
    EXPECT_EQ(ws.executions(), 0u);
    EXPECT_TRUE(ws.representatives().empty());
}

// ---------------------------------------------------------------------
// ChangeDetector.
// ---------------------------------------------------------------------

Query
projQuery(const std::string &name, std::vector<storage::AttrId> attrs)
{
    Query q;
    q.name = name;
    q.kind = engine::QueryKind::Project;
    q.projected = std::move(attrs);
    return q;
}

TEST(ChangeDetector, StableWorkloadStaysQuiet)
{
    stats::ChangeDetector det(10, 0.5);
    Query q = projQuery("Q", {1, 2});
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(det.observe(q));
    EXPECT_EQ(det.windowsCompleted(), 10u);
}

TEST(ChangeDetector, AttributeShiftFires)
{
    stats::ChangeDetector det(10, 0.5);
    Query before = projQuery("Q", {1, 2});
    Query after = projQuery("Q", {8, 9});
    for (int i = 0; i < 20; ++i)
        EXPECT_FALSE(det.observe(before));
    bool fired = false;
    for (int i = 0; i < 10; ++i)
        fired |= det.observe(after);
    EXPECT_TRUE(fired);
}

TEST(ChangeDetector, PartialShiftBelowThresholdIgnored)
{
    stats::ChangeDetector det(10, 1.5); // very tolerant
    Query before = projQuery("Q", {1, 2});
    Query after = projQuery("Q", {1, 3}); // half the mass moved
    for (int i = 0; i < 20; ++i)
        det.observe(before);
    bool fired = false;
    for (int i = 0; i < 10; ++i)
        fired |= det.observe(after);
    EXPECT_FALSE(fired);
}

TEST(ChangeDetector, FirstWindowNeverFires)
{
    stats::ChangeDetector det(5, 0.01);
    Query q = projQuery("Q", {1});
    for (int i = 0; i < 5; ++i)
        EXPECT_FALSE(det.observe(q));
}

// ---------------------------------------------------------------------
// AdaptiveEngine.
// ---------------------------------------------------------------------

struct AdaptiveWorld
{
    nobench::Config cfg;
    engine::DataSet data;
    std::unique_ptr<nobench::QuerySet> qs;

    explicit AdaptiveWorld(uint64_t docs = 1500)
    {
        cfg.numDocs = docs;
        cfg.seed = 99;
        data = nobench::generateDataSet(cfg);
        qs = std::make_unique<nobench::QuerySet>(data, cfg);
    }

    std::vector<Query>
    initialWorkload()
    {
        Rng rng(1);
        return nobench::representatives(*qs, nobench::Mix::uniform(),
                                        rng);
    }
};

TEST(AdaptiveEngine, BuildsDvpLayoutUpFront)
{
    AdaptiveWorld w;
    Params prm;
    prm.background = false;
    AdaptiveEngine eng(w.data, w.initialWorkload(), prm);
    auto db = eng.snapshot();
    // Table-IV-like shape from the start.
    EXPECT_GE(db->tableCount(), 90u);
    EXPECT_LE(db->tableCount(), 130u);
    EXPECT_GT(eng.adaptation().lastPartitionerSeconds, 0.0);
}

TEST(AdaptiveEngine, ExecutesQueriesAndRecordsStats)
{
    AdaptiveWorld w;
    Params prm;
    prm.background = false;
    AdaptiveEngine eng(w.data, w.initialWorkload(), prm);
    Rng rng(2);
    for (int i = 0; i < 30; ++i) {
        Query q = w.qs->instantiate(i % nobench::kNumTemplates, rng);
        eng.execute(q);
    }
    EXPECT_EQ(eng.workloadStats().executions(), 30u);
}

TEST(AdaptiveEngine, SynchronousRepartitionOnWorkloadChange)
{
    AdaptiveWorld w;
    Params prm;
    prm.background = false;
    prm.window = 40;
    prm.changeThreshold = 0.4;
    AdaptiveEngine eng(w.data, w.initialWorkload(), prm);

    Rng rng(3);
    // Steady phase.
    for (int i = 0; i < 80; ++i)
        eng.execute(w.qs->instantiate(i % nobench::kNumTemplates, rng));
    EXPECT_EQ(eng.adaptation().repartitions, 0u);

    // Shifted phase: different attributes.
    for (int i = 0; i < 120; ++i)
        eng.execute(
            w.qs->instantiateShifted(i % nobench::kNumTemplates, rng));
    EXPECT_GE(eng.adaptation().changesDetected, 1u);
    EXPECT_GE(eng.adaptation().repartitions, 1u);
    EXPECT_GT(eng.adaptation().lastRepartitionSeconds, 0.0);

    // Post-repartition results must still be correct: compare one
    // query against a fresh row-layout engine.
    Query probe = w.qs->instantiate(nobench::kQ6, rng);
    ResultSet got = eng.execute(probe);
    engine::Database row(
        w.data, layout::Layout::rowBased(w.data.catalog.allAttrs()),
        "row");
    engine::Executor ref(row);
    EXPECT_TRUE(got.equals(ref.run(probe)));
}

TEST(AdaptiveEngine, AdaptMasterSwitchOff)
{
    AdaptiveWorld w;
    Params prm;
    prm.background = false;
    prm.adapt = false;
    prm.window = 20;
    prm.changeThreshold = 0.1;
    AdaptiveEngine eng(w.data, w.initialWorkload(), prm);
    Rng rng(4);
    for (int i = 0; i < 60; ++i)
        eng.execute(
            w.qs->instantiateShifted(i % nobench::kNumTemplates, rng));
    EXPECT_EQ(eng.adaptation().repartitions, 0u);
}

TEST(AdaptiveEngine, IngestVisibleImmediately)
{
    AdaptiveWorld w(300);
    Params prm;
    prm.background = false;
    AdaptiveEngine eng(w.data, w.initialWorkload(), prm);

    Rng rng(5);
    json::JsonValue doc =
        nobench::generateDoc(w.cfg, rng,
                             static_cast<int64_t>(w.data.docs.size()));
    int64_t oid = eng.ingest(doc);

    Query q;
    q.kind = engine::QueryKind::Select;
    q.projected = {w.data.catalog.find("num")};
    q.cond.op = engine::CondOp::Eq;
    q.cond.attr = w.data.catalog.find("id");
    q.cond.lo = oid;
    ResultSet rs = eng.execute(q);
    ASSERT_EQ(rs.rowCount(), 1u);
    EXPECT_EQ(rs.oids[0], oid);
}

TEST(AdaptiveEngine, BackgroundRepartitionSwapsAtomically)
{
    AdaptiveWorld w;
    Params prm;
    prm.background = true;
    prm.window = 30;
    prm.changeThreshold = 0.4;
    AdaptiveEngine eng(w.data, w.initialWorkload(), prm);

    Rng rng(6);
    for (int i = 0; i < 60; ++i)
        eng.execute(w.qs->instantiate(i % nobench::kNumTemplates, rng));

    auto before = eng.snapshot();
    // Shift the workload; keep executing while the worker rebuilds.
    ResultSet last_ref, last_got;
    for (int i = 0; i < 120; ++i) {
        Query q =
            w.qs->instantiateShifted(i % nobench::kNumTemplates, rng);
        eng.execute(q);
    }
    eng.quiesce();
    EXPECT_GE(eng.adaptation().repartitions, 1u);

    // The old snapshot must still be usable (shared ownership), and
    // the new database must return correct results.
    EXPECT_GE(before->tableCount(), 1u);
    Query probe = w.qs->instantiateShifted(nobench::kQ3, rng);
    ResultSet got = eng.execute(probe);
    engine::Database row(
        w.data, layout::Layout::rowBased(w.data.catalog.allAttrs()),
        "row");
    engine::Executor ref(row);
    EXPECT_TRUE(got.equals(ref.run(probe)));
}

TEST(AdaptiveEngine, IngestDuringBackgroundRepartitionIsCaughtUp)
{
    AdaptiveWorld w(800);
    Params prm;
    prm.background = true;
    prm.window = 20;
    prm.changeThreshold = 0.3;
    AdaptiveEngine eng(w.data, w.initialWorkload(), prm);

    Rng rng(7);
    for (int i = 0; i < 40; ++i)
        eng.execute(w.qs->instantiate(i % nobench::kNumTemplates, rng));
    // Trigger a change, then immediately ingest while the background
    // worker may be rebuilding.
    std::vector<int64_t> new_oids;
    for (int i = 0; i < 40; ++i) {
        eng.execute(
            w.qs->instantiateShifted(i % nobench::kNumTemplates, rng));
        json::JsonValue doc = nobench::generateDoc(
            w.cfg, rng, static_cast<int64_t>(w.data.docs.size()));
        new_oids.push_back(eng.ingest(doc));
    }
    eng.quiesce();

    // Every ingested document must be present afterwards.
    auto db = eng.snapshot();
    EXPECT_EQ(db->docCount(), w.data.docs.size());
    storage::AttrId id_attr = w.data.catalog.find("id");
    for (int64_t oid : new_oids) {
        engine::AttrLoc loc = db->locate(id_attr);
        ASSERT_GE(loc.table, 0);
        EXPECT_NE(db->table(loc.table).rowOf(oid), storage::kNoRow)
            << "oid " << oid;
    }
}

} // namespace
} // namespace dvp::adaptive
