/**
 * @file
 * Unit tests for src/storage: slot encoding, dictionary, catalog,
 * encoder, padding model, Table behaviour (sparse omission, oid index).
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "json/parser.hh"
#include "storage/catalog.hh"
#include "storage/dictionary.hh"
#include "storage/encoder.hh"
#include "storage/padding.hh"
#include "storage/table.hh"
#include "storage/value.hh"
#include "util/random.hh"

namespace dvp::storage
{
namespace
{

TEST(Value, EncodingPredicates)
{
    EXPECT_TRUE(isNull(kNullSlot));
    EXPECT_FALSE(isNull(0));
    Slot s = encodeString(42);
    EXPECT_TRUE(isStringSlot(s));
    EXPECT_FALSE(isNumericSlot(s));
    EXPECT_EQ(decodeString(s), 42u);
    EXPECT_TRUE(isNumericSlot(encodeInt(-5)));
    EXPECT_TRUE(isNumericSlot(encodeBool(true)));
    EXPECT_FALSE(isStringSlot(encodeInt(7)));
    EXPECT_FALSE(isStringSlot(kNullSlot));
    EXPECT_FALSE(isNumericSlot(kNullSlot));
}

TEST(Value, NegativeIntsAreNotStrings)
{
    // Negative numbers have the sign bit set; bit 62 alone must not
    // classify them as strings.
    EXPECT_TRUE(isNumericSlot(encodeInt(-1)));
    EXPECT_FALSE(isStringSlot(encodeInt(-1)));
}

TEST(Dictionary, InternIsIdempotent)
{
    Dictionary d;
    StringId a = d.intern("hello");
    StringId b = d.intern("world");
    EXPECT_NE(a, b);
    EXPECT_EQ(d.intern("hello"), a);
    EXPECT_EQ(d.size(), 2u);
    EXPECT_EQ(d.text(a), "hello");
    EXPECT_EQ(d.text(b), "world");
}

TEST(Dictionary, LookupDoesNotIntern)
{
    Dictionary d;
    EXPECT_EQ(d.lookup("nope"), Dictionary::kMissing);
    EXPECT_EQ(d.size(), 0u);
    StringId id = d.intern("yes");
    EXPECT_EQ(d.lookup("yes"), id);
}

TEST(Dictionary, SurvivesGrowth)
{
    Dictionary d;
    std::vector<StringId> ids;
    for (int i = 0; i < 5000; ++i)
        ids.push_back(d.intern("key_" + std::to_string(i)));
    EXPECT_EQ(d.size(), 5000u);
    for (int i = 0; i < 5000; ++i) {
        EXPECT_EQ(d.lookup("key_" + std::to_string(i)), ids[i]);
        EXPECT_EQ(d.text(ids[i]), "key_" + std::to_string(i));
    }
}

TEST(Dictionary, EmptyStringIsValid)
{
    Dictionary d;
    StringId id = d.intern("");
    EXPECT_EQ(d.lookup(""), id);
    EXPECT_EQ(d.text(id), "");
}

TEST(Dictionary, MemoryAccounting)
{
    Dictionary d;
    size_t before = d.memoryBytes();
    d.intern(std::string(1000, 'x'));
    EXPECT_GT(d.memoryBytes(), before + 999);
}

TEST(Catalog, EnsureAndFind)
{
    Catalog c;
    AttrId a = c.ensure("num");
    AttrId b = c.ensure("str1");
    EXPECT_NE(a, b);
    EXPECT_EQ(c.ensure("num"), a);
    EXPECT_EQ(c.find("num"), a);
    EXPECT_EQ(c.find("ghost"), kNoAttr);
    EXPECT_EQ(c.attrCount(), 2u);
    EXPECT_EQ(c.name(a), "num");
}

TEST(Catalog, SparsenessRatios)
{
    Catalog c;
    AttrId common = c.ensure("common");
    AttrId rare = c.ensure("rare");
    for (int i = 0; i < 100; ++i) {
        std::vector<AttrId> present{common};
        std::vector<AttrType> types{AttrType::Integer};
        if (i < 5) {
            present.push_back(rare);
            types.push_back(AttrType::String);
        }
        c.noteDocument(present, types);
    }
    EXPECT_DOUBLE_EQ(c.sparseness(common), 1.0);
    EXPECT_DOUBLE_EQ(c.sparseness(rare), 0.05);
    EXPECT_EQ(c.docCount(), 100u);
}

TEST(Catalog, EmptyDataSetSparsenessIsNeutral)
{
    Catalog c;
    AttrId a = c.ensure("a");
    EXPECT_DOUBLE_EQ(c.sparseness(a), 1.0);
}

TEST(Catalog, TypeTracking)
{
    Catalog c;
    AttrId dyn = c.ensure("dyn");
    c.noteDocument({dyn}, {AttrType::Integer});
    EXPECT_EQ(c.info(dyn).type, AttrType::Integer);
    c.noteDocument({dyn}, {AttrType::String});
    EXPECT_EQ(c.info(dyn).type, AttrType::Mixed);
}

TEST(Encoder, EncodesScalarsAndInterns)
{
    Catalog cat;
    Dictionary dict;
    Encoder enc(cat, dict);
    auto parsed = json::parse(R"({"s":"abc","n":7,"b":true})");
    ASSERT_TRUE(parsed.ok);
    Document doc = enc.encodeObject(parsed.value);
    EXPECT_EQ(doc.oid, 0);
    ASSERT_EQ(doc.attrs.size(), 3u);
    EXPECT_EQ(doc.slotOf(cat.find("n")), 7);
    EXPECT_EQ(doc.slotOf(cat.find("b")), 1);
    Slot s = doc.slotOf(cat.find("s"));
    ASSERT_TRUE(isStringSlot(s));
    EXPECT_EQ(dict.text(decodeString(s)), "abc");
}

TEST(Encoder, SkipsJsonNulls)
{
    Catalog cat;
    Dictionary dict;
    Encoder enc(cat, dict);
    auto parsed = json::parse(R"({"a":null,"b":2})");
    ASSERT_TRUE(parsed.ok);
    Document doc = enc.encodeObject(parsed.value);
    EXPECT_EQ(doc.attrs.size(), 1u);
    EXPECT_TRUE(isNull(doc.slotOf(cat.find("a"))));
}

TEST(Encoder, AssignsSequentialOids)
{
    Catalog cat;
    Dictionary dict;
    Encoder enc(cat, dict);
    auto parsed = json::parse(R"({"x":1})");
    ASSERT_TRUE(parsed.ok);
    EXPECT_EQ(enc.encodeObject(parsed.value).oid, 0);
    EXPECT_EQ(enc.encodeObject(parsed.value).oid, 1);
    EXPECT_EQ(enc.nextOid(), 2);
}

TEST(Encoder, SlotOfMissingAttrIsNull)
{
    Document d;
    d.attrs = {{3, 30}, {7, 70}};
    EXPECT_EQ(d.slotOf(3), 30);
    EXPECT_EQ(d.slotOf(7), 70);
    EXPECT_TRUE(isNull(d.slotOf(5)));
    EXPECT_TRUE(isNull(d.slotOf(100)));
}

TEST(Padding, Equation10)
{
    EXPECT_EQ(paddingSize(64), 0u);
    EXPECT_EQ(paddingSize(128), 0u);
    EXPECT_EQ(paddingSize(72), 56u); // CLS - 72 % 64
    EXPECT_EQ(paddingSize(8), 56u);
    EXPECT_EQ(paddingSize(100), 28u);
}

TEST(Padding, ProjectionModelAlignedStride)
{
    // 64-byte records, attribute at offset 0: exactly one line per rec.
    EXPECT_DOUBLE_EQ(projectionMissesPerRecord(64, 0, 8), 1.0);
    // 128-byte records: still one distinct line per record.
    EXPECT_DOUBLE_EQ(projectionMissesPerRecord(128, 0, 8), 1.0);
    // 8-byte slots on 8-byte-multiple strides never straddle, so the
    // column-scan misses equal distinct-lines / records exactly.
    EXPECT_DOUBLE_EQ(projectionMissesPerRecord(72, 0, 8), 1.0);
}

TEST(Padding, RecordSpanModel)
{
    // 64-byte aligned records span exactly one line.
    EXPECT_DOUBLE_EQ(avgRecordSpanLines(64, 64), 1.0);
    // 24-byte records: over the 192-byte period, records at offsets
    // 48 and 56 (mod 64) straddle a boundary -> 10 lines / 8 records.
    EXPECT_DOUBLE_EQ(avgRecordSpanLines(24, 24), 10.0 / 8.0);
    // 72-byte records always span exactly two lines (72 <= 128 and the
    // worst alignment 56+72 = 128 just fits).
    EXPECT_DOUBLE_EQ(avgRecordSpanLines(72, 72), 2.0);
    // Padding removes the straddle: 24-byte payload at 64-byte stride.
    EXPECT_DOUBLE_EQ(avgRecordSpanLines(64, 24), 1.0);
}

TEST(Padding, ChooseStridePadsWhenStraddlesVanish)
{
    // Sub-line payloads stay dense (several records per line).
    EXPECT_EQ(chooseStride(24), 24u);
    // 72-byte payload: 2.0 lines either way; stay unpadded (memory).
    EXPECT_EQ(chooseStride(72), 72u);
    // 88-byte payload: padding to 128 drops the expected record span
    // from 2.125 lines to 2.0.
    EXPECT_EQ(chooseStride(88), 128u);
}

TEST(Padding, SmallStrideSharesLines)
{
    // 8-byte records: 8 records share one line.
    EXPECT_DOUBLE_EQ(projectionMissesPerRecord(8, 0, 8), 1.0 / 8.0);
    // 16-byte records: 4 records share one line.
    EXPECT_DOUBLE_EQ(projectionMissesPerRecord(16, 0, 8), 1.0 / 4.0);
}

TEST(Padding, ChooseStrideNeverShrinks)
{
    for (size_t payload = 8; payload <= 1024; payload += 8) {
        size_t stride = chooseStride(payload);
        EXPECT_GE(stride, payload);
        EXPECT_TRUE(stride == payload ||
                    stride == payload + paddingSize(payload));
    }
}

TEST(Padding, AlignedPayloadsStayUnpadded)
{
    EXPECT_EQ(chooseStride(64), 64u);
    EXPECT_EQ(chooseStride(128), 128u);
    EXPECT_EQ(chooseStride(320), 320u);
}

class TableTest : public ::testing::Test
{
  protected:
    Arena arena;
};

TEST_F(TableTest, AppendAndRead)
{
    Table t("t", {0, 1, 2}, arena);
    Slot r0[] = {10, 11, 12};
    Slot r1[] = {20, kNullSlot, 22};
    EXPECT_TRUE(t.append(0, r0));
    EXPECT_TRUE(t.append(5, r1));
    ASSERT_EQ(t.rows(), 2u);
    EXPECT_EQ(t.oid(0), 0);
    EXPECT_EQ(t.oid(1), 5);
    EXPECT_EQ(t.cell(0, 2), 12);
    EXPECT_TRUE(isNull(t.cell(1, 1)));
    EXPECT_EQ(t.nullCells(), 1u);
}

TEST_F(TableTest, SparseOmission)
{
    Table t("t", {7}, arena);
    Slot null_only[] = {kNullSlot};
    Slot real[] = {42};
    EXPECT_FALSE(t.append(0, null_only));
    EXPECT_TRUE(t.append(1, real));
    EXPECT_FALSE(t.append(2, null_only));
    ASSERT_EQ(t.rows(), 1u);
    EXPECT_EQ(t.oid(0), 1);
    EXPECT_EQ(t.nullCells(), 0u);
}

TEST_F(TableTest, RowOfBinarySearch)
{
    Table t("t", {0}, arena);
    for (int64_t oid = 0; oid < 1000; oid += 3) {
        Slot v[] = {oid * 10};
        t.append(oid, v);
    }
    EXPECT_EQ(t.rowOf(0), 0);
    EXPECT_EQ(t.rowOf(3), 1);
    EXPECT_EQ(t.rowOf(999), 333);
    EXPECT_EQ(t.rowOf(1), kNoRow);
    EXPECT_EQ(t.rowOf(-5), kNoRow);
    EXPECT_EQ(t.rowOf(10000), kNoRow);
}

TEST_F(TableTest, LowerBoundSemantics)
{
    Table t("t", {0}, arena);
    for (int64_t oid : {2, 4, 8}) {
        Slot v[] = {1};
        t.append(oid, v);
    }
    EXPECT_EQ(t.lowerBound(0), 0u);
    EXPECT_EQ(t.lowerBound(2), 0u);
    EXPECT_EQ(t.lowerBound(3), 1u);
    EXPECT_EQ(t.lowerBound(8), 2u);
    EXPECT_EQ(t.lowerBound(9), 3u);
}

TEST_F(TableTest, GrowthPreservesData)
{
    Table t("t", {0, 1}, arena);
    for (int64_t oid = 0; oid < 10000; ++oid) {
        Slot v[] = {oid, oid * 2};
        t.append(oid, v);
    }
    ASSERT_EQ(t.rows(), 10000u);
    Rng rng(3);
    for (int i = 0; i < 200; ++i) {
        auto oid = static_cast<int64_t>(rng.below(10000));
        RowIdx row = t.rowOf(oid);
        ASSERT_NE(row, kNoRow);
        EXPECT_EQ(t.cell(static_cast<size_t>(row), 1), oid * 2);
    }
}

TEST_F(TableTest, ColumnOf)
{
    Table t("t", {5, 9, 2}, arena);
    EXPECT_EQ(t.columnOf(5), 0);
    EXPECT_EQ(t.columnOf(9), 1);
    EXPECT_EQ(t.columnOf(2), 2);
    EXPECT_EQ(t.columnOf(7), -1);
    EXPECT_EQ(t.columnOf(1000), -1);
}

TEST_F(TableTest, RegrowthPreservesCacheCollisionShift)
{
    // The arena staggers each table's base by one extra cache line so
    // co-scanned tables do not collide on cache sets.  Regrowth must
    // keep a table's original shift: before the fix, every capacity
    // doubling consumed a fresh rotation slot, silently migrating the
    // table onto another table's cache sets and skewing the rotation
    // for tables created later.
    constexpr size_t kTables = 16;
    std::vector<std::unique_ptr<Table>> tables;
    std::vector<size_t> born_offset;
    for (size_t i = 0; i < kTables; ++i) {
        tables.push_back(std::make_unique<Table>(
            "t" + std::to_string(i), std::vector<AttrId>{0}, arena));
        Slot v[] = {1};
        tables[i]->append(0, v);
        auto addr = reinterpret_cast<uintptr_t>(tables[i]->record(0));
        born_offset.push_back(addr % kPageSize);
    }

    // Many appends -> several regrowths per table (initial capacity is
    // 1024 rows), interleaved across tables like a real bulk build.
    for (int64_t oid = 1; oid < 20000; ++oid) {
        Slot v[] = {oid};
        for (auto &t : tables)
            t->append(oid, v);
    }

    std::set<size_t> offsets;
    for (size_t i = 0; i < kTables; ++i) {
        auto addr = reinterpret_cast<uintptr_t>(tables[i]->record(0));
        EXPECT_EQ(addr % kPageSize, born_offset[i]) << "table " << i;
        offsets.insert(addr % kPageSize);
    }
    // All 16 tables keep pairwise-distinct page offsets.
    EXPECT_EQ(offsets.size(), kTables);
}

TEST_F(TableTest, StrictlyIncreasingOidsEnforced)
{
    Table t("t", {0}, arena);
    Slot v[] = {1};
    t.append(5, v);
    EXPECT_DEATH(t.append(5, v), "strictly increasing");
    EXPECT_DEATH(t.append(3, v), "strictly increasing");
}

TEST_F(TableTest, PaddingDecisionApplied)
{
    // 8 attributes -> 72-byte payload with oid; check the decision is
    // consistent with the analytic model either way.
    Table t("p", {0, 1, 2, 3, 4, 5, 6, 7}, arena, true);
    EXPECT_EQ(t.strideBytes(), chooseStride(72));

    Table unpadded("u", {0, 1, 2, 3, 4, 5, 6, 7}, arena, false);
    EXPECT_EQ(unpadded.strideBytes(), 72u);
    EXPECT_FALSE(unpadded.padded());
}

TEST_F(TableTest, PaddingSlotsAreZeroed)
{
    Table t("p", {0, 1, 2, 3, 4, 5, 6, 7}, arena, true);
    Slot v[] = {1, 2, 3, 4, 5, 6, 7, 8};
    t.append(0, v);
    const Slot *rec = t.record(0);
    for (size_t s = 9; s < t.strideSlots(); ++s)
        EXPECT_EQ(rec[s], 0);
}

TEST_F(TableTest, StorageBytesMatchesStride)
{
    Table t("t", {0, 1}, arena, false);
    Slot v[] = {1, 2};
    t.append(0, v);
    t.append(1, v);
    EXPECT_EQ(t.storageBytes(), 2 * 24u);
}

} // namespace
} // namespace dvp::storage
