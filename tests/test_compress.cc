/**
 * @file
 * Compressed partition-block tests (DESIGN.md §14).
 *
 * Five contracts:
 *  1. Codec round-trip — compressColumn / decompressColumn / columnValue
 *     reproduce the input slots exactly across value domains (all-null,
 *     constant, small-range, wide, string-tagged, sorted) x null
 *     densities x row counts x strides, and the chosen format is never
 *     larger than the raw encoding.
 *  2. Scan-on-compressed — evalColBlock agrees with matchOne
 *     slot-for-slot for all ten predicate ops over every encoding and
 *     over unaligned sub-ranges, without decompressing on the Rle/Pack
 *     fast paths.
 *  3. Table equivalence — a compressed Table answers oid()/cell()/
 *     materializeRecord()/zone() exactly like the raw Table for the
 *     same appends, while bytesUsed() reports a smaller footprint for
 *     compressible data.
 *  4. Executor equivalence — with compression on, every NoBench query
 *     (plus IS [NOT] NULL and a clustered range) returns bit-identical
 *     results to the uncompressed oracle across layouts, thread counts,
 *     and morsel sizes, and compression survives an adaptive
 *     repartition swap.
 *  5. Observability — the dvp_partition_bytes / dvp_db_bytes gauges
 *     report the footprint, and the compressed-eval path counters tick.
 *
 * The binary runs twice in ctest: default dispatch and
 * DVP_FORCE_SCALAR=1 (test_compress_scalar), covering both kernel
 * dispatch outcomes on the compressed Raw/Decompress paths.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <climits>
#include <cstdlib>
#include <memory>
#include <set>
#include <vector>

#include "adaptive/adaptive_engine.hh"
#include "dvp/cost_model.hh"
#include "engine/database.hh"
#include "json/flatten.hh"
#include "json/value.hh"
#include "engine/executor.hh"
#include "engine/kernels.hh"
#include "engine/query.hh"
#include "nobench/generator.hh"
#include "nobench/queries.hh"
#include "obs/export.hh"
#include "obs/metrics.hh"
#include "sql/parser.hh"
#include "storage/compress.hh"
#include "storage/table.hh"
#include "storage/value.hh"
#include "util/arena.hh"
#include "util/random.hh"

namespace dvp
{
namespace
{

using engine::CondOp;
using engine::Database;
using engine::DataSet;
using engine::Executor;
using engine::Query;
using engine::QueryKind;
using engine::ResultSet;
using layout::Layout;
using storage::BlockFmt;
using storage::ColBlock;
using storage::compressColumn;
using storage::columnValue;
using storage::decompressColumn;
using storage::kNullSlot;
using storage::kZoneRows;
using storage::Slot;
using storage::Table;
using storage::ZoneEntry;
namespace k = engine::kernels;

size_t
testDocs()
{
    if (const char *env = std::getenv("DVP_TEST_DOCS"))
        return std::strtoull(env, nullptr, 10);
    return 5000;
}

// ---------------------------------------------------------------------
// 1. Codec round-trip
// ---------------------------------------------------------------------

/** Value domains exercising each encoding and the fallbacks. */
enum class Domain
{
    AllNull,    ///< Rle, single run
    Constant,   ///< Rle, one value
    RunHeavy,   ///< Rle, long runs of few values
    SmallRange, ///< Pack, narrow frame
    Sorted,     ///< Pack, oid-like
    Strings,    ///< Pack or Raw, tagged slots
    Wide,       ///< Raw (range overflows the pack width)
    Mixed       ///< anything goes
};

constexpr Domain kDomains[] = {
    Domain::AllNull, Domain::Constant, Domain::RunHeavy,
    Domain::SmallRange, Domain::Sorted, Domain::Strings,
    Domain::Wide, Domain::Mixed,
};

std::vector<Slot>
makeColumn(Domain d, size_t n, double null_density, Rng &rng)
{
    std::vector<Slot> col(n);
    Slot run_val = 0;
    size_t run_left = 0;
    for (size_t i = 0; i < n; ++i) {
        if (d != Domain::AllNull && d != Domain::Constant &&
            rng.uniform() < null_density) {
            col[i] = kNullSlot;
            continue;
        }
        switch (d) {
          case Domain::AllNull:
            col[i] = kNullSlot;
            break;
          case Domain::Constant:
            col[i] = 42;
            break;
          case Domain::RunHeavy:
            if (run_left == 0) {
                run_val = rng.range(-3, 3);
                run_left = 1 + rng.below(200);
            }
            --run_left;
            col[i] = run_val;
            break;
          case Domain::SmallRange:
            col[i] = rng.range(-100, 100);
            break;
          case Domain::Sorted:
            col[i] = static_cast<Slot>(i * 3 + rng.below(2));
            break;
          case Domain::Strings:
            col[i] = storage::encodeString(
                static_cast<storage::StringId>(rng.below(32)));
            break;
          case Domain::Wide:
            col[i] = static_cast<Slot>(rng.next()) / 2;
            break;
          case Domain::Mixed: {
            double u = rng.uniform();
            if (u < 0.25)
                col[i] = storage::encodeString(
                    static_cast<storage::StringId>(rng.below(8)));
            else if (u < 0.5)
                col[i] = static_cast<Slot>(rng.next()) / 2;
            else
                col[i] = rng.range(-8, 8);
            break;
          }
        }
    }
    return col;
}

TEST(CompressCodec, RoundTripAcrossDomains)
{
    Rng rng(101);
    const size_t sizes[] = {1, 5, 64, 1000, kZoneRows - 1, kZoneRows};
    for (Domain d : kDomains) {
        for (double nulls : {0.0, 0.05, 0.5, 0.95}) {
            for (size_t n : sizes) {
                std::vector<Slot> col = makeColumn(d, n, nulls, rng);
                ColBlock cb = compressColumn(col.data(), 1, n);
                ASSERT_EQ(cb.rows, n);
                // Never larger than raw (the chooser's contract).
                EXPECT_LE(cb.payloadBytes(),
                          n * 8 + (cb.fmt == BlockFmt::Pack ? 8 : 0));

                std::vector<Slot> out(n, ~Slot{0});
                decompressColumn(cb, out.data());
                ASSERT_EQ(out, col)
                    << "domain=" << static_cast<int>(d)
                    << " nulls=" << nulls << " n=" << n
                    << " fmt=" << storage::fmtName(cb.fmt);

                // Random access agrees with bulk decode.
                for (int probes = 0; probes < 64; ++probes) {
                    size_t i = rng.below(n);
                    ASSERT_EQ(columnValue(cb, i), col[i]);
                }
            }
        }
    }
}

TEST(CompressCodec, StridedInputMatchesDense)
{
    Rng rng(103);
    const size_t n = kZoneRows;
    for (size_t stride : {size_t{2}, size_t{5}}) {
        std::vector<Slot> dense = makeColumn(Domain::Mixed, n, 0.3, rng);
        std::vector<Slot> strided(n * stride, -7);
        for (size_t i = 0; i < n; ++i)
            strided[i * stride] = dense[i];
        ColBlock a = compressColumn(dense.data(), 1, n);
        ColBlock b = compressColumn(strided.data(), stride, n);
        EXPECT_EQ(a.fmt, b.fmt);
        EXPECT_EQ(a.bytes, b.bytes);
    }
}

TEST(CompressCodec, FormatSelection)
{
    Rng rng(107);

    // All-null: one RLE run, a few bytes for 2048 rows.
    std::vector<Slot> nulls(kZoneRows, kNullSlot);
    ColBlock cn = compressColumn(nulls.data(), 1, kZoneRows);
    EXPECT_EQ(cn.fmt, BlockFmt::Rle);
    EXPECT_EQ(cn.runs, 1u);
    EXPECT_LE(cn.payloadBytes(), size_t{16});

    // Sorted oid-like: frame-of-reference pack, ~12 bits per row.
    std::vector<Slot> oids(kZoneRows);
    for (size_t i = 0; i < kZoneRows; ++i)
        oids[i] = static_cast<Slot>(1000000 + i * 2);
    ColBlock co = compressColumn(oids.data(), 1, kZoneRows);
    EXPECT_EQ(co.fmt, BlockFmt::Pack);
    EXPECT_LT(co.payloadBytes(), kZoneRows * 8 / 4);

    // Wide random 63-bit values: nothing beats raw.
    std::vector<Slot> wide = makeColumn(Domain::Wide, kZoneRows, 0, rng);
    ColBlock cw = compressColumn(wide.data(), 1, kZoneRows);
    EXPECT_EQ(cw.fmt, BlockFmt::Raw);
    EXPECT_EQ(cw.payloadBytes(), kZoneRows * 8);
}

TEST(CompressCodec, PackEdgeCases)
{
    // Range of exactly 2^56 - 2 still packs (codes need range + 1
    // values plus the NULL escape); one more falls back.
    {
        std::vector<Slot> col(kZoneRows, 0);
        col[1] = (Slot{1} << 56) - 2;
        ColBlock cb = compressColumn(col.data(), 1, kZoneRows);
        std::vector<Slot> out(kZoneRows);
        decompressColumn(cb, out.data());
        EXPECT_EQ(out, col);
    }
    {
        std::vector<Slot> col(kZoneRows, 0);
        col[1] = Slot{1} << 60;
        ColBlock cb = compressColumn(col.data(), 1, kZoneRows);
        EXPECT_NE(cb.fmt, BlockFmt::Pack);
        std::vector<Slot> out(kZoneRows);
        decompressColumn(cb, out.data());
        EXPECT_EQ(out, col);
    }
    // Negative frames round-trip (base is the signed minimum).
    {
        std::vector<Slot> col(kZoneRows);
        for (size_t i = 0; i < kZoneRows; ++i)
            col[i] = -5000 + static_cast<Slot>(i);
        col[7] = kNullSlot;
        ColBlock cb = compressColumn(col.data(), 1, kZoneRows);
        EXPECT_EQ(cb.fmt, BlockFmt::Pack);
        std::vector<Slot> out(kZoneRows);
        decompressColumn(cb, out.data());
        EXPECT_EQ(out, col);
    }
}

// ---------------------------------------------------------------------
// 2. Scan-on-compressed
// ---------------------------------------------------------------------

/** Zone summary of a slot span (what Table::append maintains). */
ZoneEntry
zoneOf(const std::vector<Slot> &col)
{
    ZoneEntry z;
    for (Slot s : col) {
        if (storage::isNull(s)) {
            ++z.nulls;
        } else {
            z.min = std::min(z.min, s);
            z.max = std::max(z.max, s);
            ++z.nonnull;
        }
    }
    return z;
}

/** Literals keeping every op's match rate away from 0 and 1. */
std::vector<std::pair<Slot, Slot>>
literalsFor(k::PredOp op, Rng &rng)
{
    switch (op) {
      case k::PredOp::Between:
        return {{-3, 3},
                {rng.range(-120, 0), rng.range(0, 120)},
                {INT64_MIN, INT64_MAX},
                {5, -5}}; // empty range
      case k::PredOp::StrEq:
        return {{storage::encodeString(
                     static_cast<storage::StringId>(rng.below(32))),
                 0}};
      case k::PredOp::IsNull:
      case k::PredOp::NotNull:
        return {{0, 0}};
      default:
        return {{rng.range(-100, 100), 0},
                {kNullSlot, 0},           // sentinel literal never matches
                {Slot{1} << 58, 0}};      // far outside every frame
    }
}

constexpr k::PredOp kAllOps[] = {
    k::PredOp::Eq,      k::PredOp::Ne,     k::PredOp::Lt,
    k::PredOp::Le,      k::PredOp::Gt,     k::PredOp::Ge,
    k::PredOp::Between, k::PredOp::StrEq,  k::PredOp::IsNull,
    k::PredOp::NotNull,
};

TEST(EvalColBlock, AgreesWithMatchOneEverywhere)
{
    Rng rng(211);
    std::vector<Slot> scratch(kZoneRows);
    k::SelVec sel;
    for (Domain d : kDomains) {
        for (double nulls : {0.0, 0.3, 0.9}) {
            std::vector<Slot> col =
                makeColumn(d, kZoneRows, nulls, rng);
            ColBlock cb = compressColumn(col.data(), 1, kZoneRows);
            ZoneEntry z = zoneOf(col);
            for (k::PredOp op : kAllOps) {
                for (auto [lo, hi] : literalsFor(op, rng)) {
                    k::Pred p{op, lo, hi};
                    // Full block plus unaligned sub-ranges.
                    const std::pair<size_t, size_t> ranges[] = {
                        {0, kZoneRows},
                        {0, 64},
                        {17, 1900},
                        {kZoneRows - 5, kZoneRows},
                    };
                    for (auto [i0, i1] : ranges) {
                        k::evalColBlock(cb, i0, i1, p, z,
                                        scratch.data(), sel);
                        std::vector<uint32_t> ref;
                        for (size_t i = i0; i < i1; ++i)
                            if (k::matchOne(p, col[i]))
                                ref.push_back(
                                    static_cast<uint32_t>(i - i0));
                        ASSERT_EQ(sel.n, ref.size())
                            << storage::fmtName(cb.fmt) << " "
                            << k::predName(op) << " lo=" << lo
                            << " hi=" << hi << " [" << i0 << ","
                            << i1 << ")";
                        for (uint32_t i = 0; i < sel.n; ++i)
                            ASSERT_EQ(sel.idx[i], ref[i]);
                    }
                }
            }
        }
    }
}

TEST(EvalColBlock, FastPathsAvoidDecompression)
{
    Rng rng(223);
    std::vector<Slot> scratch(kZoneRows);
    k::SelVec sel;

    // NULL-run RLE answers IsNull without materializing.
    std::vector<Slot> runs(kZoneRows, kNullSlot);
    for (size_t i = 500; i < 600; ++i)
        runs[i] = 1;
    ColBlock cr = compressColumn(runs.data(), 1, kZoneRows);
    ASSERT_EQ(cr.fmt, BlockFmt::Rle);
    EXPECT_EQ(k::evalColBlock(cr, 0, kZoneRows,
                              k::Pred{k::PredOp::IsNull, 0, 0},
                              zoneOf(runs), scratch.data(), sel),
              k::CompressedPath::RleRuns);
    EXPECT_EQ(sel.n, kZoneRows - 100);

    // Pack answers Eq and Between via translated codes when the zone
    // proves a string-free block.
    std::vector<Slot> ints(kZoneRows);
    for (size_t i = 0; i < kZoneRows; ++i)
        ints[i] = static_cast<Slot>(i % 500);
    ColBlock ci = compressColumn(ints.data(), 1, kZoneRows);
    ASSERT_EQ(ci.fmt, BlockFmt::Pack);
    EXPECT_EQ(k::evalColBlock(ci, 0, kZoneRows,
                              k::Pred{k::PredOp::Eq, 123, 0},
                              zoneOf(ints), scratch.data(), sel),
              k::CompressedPath::PackTranslate);
    EXPECT_EQ(k::evalColBlock(ci, 0, kZoneRows,
                              k::Pred{k::PredOp::Between, 10, 19},
                              zoneOf(ints), scratch.data(), sel),
              k::CompressedPath::PackTranslate);

    // A packed block that may hold strings must not take the
    // code-interval path for range ops (strings would leak into the
    // interval) — but equality still translates exactly.
    std::vector<Slot> tagged(kZoneRows);
    for (size_t i = 0; i < kZoneRows; ++i)
        tagged[i] = storage::encodeString(
            static_cast<storage::StringId>(i % 16));
    ColBlock ct = compressColumn(tagged.data(), 1, kZoneRows);
    if (ct.fmt == BlockFmt::Pack) {
        EXPECT_EQ(k::evalColBlock(ct, 0, kZoneRows,
                                  k::Pred{k::PredOp::Between, INT64_MIN,
                                          INT64_MAX},
                                  zoneOf(tagged), scratch.data(), sel),
                  k::CompressedPath::Decompress);
        EXPECT_EQ(sel.n, 0u); // strings never match a range op
    }
}

// ---------------------------------------------------------------------
// 3. Table equivalence
// ---------------------------------------------------------------------

TEST(CompressedTable, AccessorsMatchRawTable)
{
    Rng rng(307);
    Arena arena;
    Table raw("raw", {0, 1, 2}, arena);
    Table comp("comp", {0, 1, 2}, arena, true, true);
    ASSERT_TRUE(comp.isCompressed());
    ASSERT_FALSE(raw.isCompressed());

    // ~3.5 blocks with oid gaps, strings, nulls, and a sorted column.
    int64_t oid = 0;
    size_t appended = 0;
    while (appended < kZoneRows * 3 + 700) {
        oid += 1 + static_cast<int64_t>(rng.below(3));
        Slot v[3];
        v[0] = rng.uniform() < 0.4
                   ? kNullSlot
                   : rng.range(-50, 50);
        v[1] = rng.uniform() < 0.2
                   ? kNullSlot
                   : storage::encodeString(
                         static_cast<storage::StringId>(rng.below(64)));
        v[2] = oid * 7; // clustered
        bool a = raw.append(oid, std::span<const Slot>(v, 3));
        bool b = comp.append(oid, std::span<const Slot>(v, 3));
        ASSERT_EQ(a, b);
        if (a)
            ++appended;
    }

    ASSERT_EQ(raw.rows(), comp.rows());
    ASSERT_EQ(comp.sealedRows(), (comp.rows() / kZoneRows) * kZoneRows);
    ASSERT_EQ(comp.sealedBlocks(), comp.rows() / kZoneRows);

    // Cell-exact equivalence, including across the sealed/tail border.
    std::vector<Slot> rec_raw(4), rec_comp(4);
    for (size_t r = 0; r < raw.rows(); ++r) {
        ASSERT_EQ(raw.oid(r), comp.oid(r)) << "row " << r;
        for (size_t c = 0; c < 3; ++c)
            ASSERT_EQ(raw.cell(r, c), comp.cell(r, c))
                << "row " << r << " col " << c;
        raw.materializeRecord(r, rec_raw.data());
        comp.materializeRecord(r, rec_comp.data());
        ASSERT_EQ(rec_raw, rec_comp) << "row " << r;
    }

    // The PK index and zone maps are unaffected by sealing.
    for (size_t r = 0; r < raw.rows(); r += 97) {
        int64_t o = raw.oid(r);
        EXPECT_EQ(comp.rowOf(o), static_cast<storage::RowIdx>(r));
        EXPECT_EQ(comp.lowerBound(o), r);
    }
    for (size_t b = 0; b < raw.blockCount(); ++b)
        for (size_t c = 0; c < 3; ++c) {
            const ZoneEntry &zr = raw.zone(b, c);
            const ZoneEntry &zc = comp.zone(b, c);
            EXPECT_EQ(zr.min, zc.min);
            EXPECT_EQ(zr.max, zc.max);
            EXPECT_EQ(zr.nonnull, zc.nonnull);
            EXPECT_EQ(zr.nulls, zc.nulls);
        }

    // Footprint: the sparse/clustered columns compress well; the raw
    // table pays 8 bytes a cell regardless.
    EXPECT_EQ(raw.bytesUsed(), raw.storageBytes());
    EXPECT_LT(comp.bytesUsed(), comp.storageBytes());

    // Per-column accounting sums to the whole.
    size_t sum = comp.columnBytesUsed(-1);
    for (int c = 0; c < 3; ++c)
        sum += comp.columnBytesUsed(c);
    size_t tail_pad =
        (comp.rows() - comp.sealedRows()) *
        (comp.strideSlots() - 4) * 8; // padding slots, if any
    EXPECT_EQ(sum + tail_pad, comp.bytesUsed());
}

// ---------------------------------------------------------------------
// 4. Executor equivalence
// ---------------------------------------------------------------------

/** One data set, three layouts, compressed + uncompressed twins. */
struct CompressWorld
{
    nobench::Config cfg;
    DataSet data;
    std::vector<Query> queries;
    std::vector<std::unique_ptr<Database>> plain; ///< oracle twins
    std::vector<std::unique_ptr<Database>> comp;  ///< compressed

    CompressWorld()
    {
        cfg.numDocs = testDocs();
        cfg.seed = 6464;
        data = nobench::generateDataSet(cfg);
        nobench::QuerySet qs(data, cfg);
        Rng rng(17);
        for (int t = 0; t < nobench::kNumTemplates; ++t)
            queries.push_back(qs.instantiate(t, rng));
        queries.push_back(nullQuery(false));
        queries.push_back(nullQuery(true));

        const std::vector<storage::AttrId> attrs =
            data.catalog.allAttrs();
        const struct
        {
            Layout layout;
            const char *name;
        } layouts[] = {
            {Layout::rowBased(attrs), "row"},
            {Layout::columnBased(attrs), "column"},
            {Layout::fixedSize(attrs, 4), "hybrid4"},
        };
        for (const auto &l : layouts) {
            plain.push_back(std::make_unique<Database>(
                data, l.layout, l.name));
            comp.push_back(std::make_unique<Database>(
                data, l.layout, std::string(l.name) + "+z", true,
                nullptr, true));
        }
    }

    /** IS [NOT] NULL on a sparse attribute (~1% dense). */
    Query
    nullQuery(bool not_null) const
    {
        Query q;
        q.name = not_null ? "Qnn" : "Qin";
        q.kind = QueryKind::Select;
        storage::AttrId sparse = data.catalog.find("sparse_107");
        storage::AttrId num = data.catalog.find("num");
        EXPECT_NE(sparse, storage::kNoAttr);
        EXPECT_NE(num, storage::kNoAttr);
        q.projected = {num};
        q.cond.op = not_null ? CondOp::NotNull : CondOp::IsNull;
        q.cond.attr = sparse;
        q.selectivity = not_null ? 0.01 : 0.99;
        return q;
    }
};

CompressWorld &
cworld()
{
    static CompressWorld w;
    return w;
}

void
expectSame(const ResultSet &got, const ResultSet &ref)
{
    EXPECT_EQ(got.rowCount(), ref.rowCount());
    EXPECT_EQ(got.checksum, ref.checksum);
    EXPECT_EQ(got.oids, ref.oids);
    EXPECT_EQ(got.rows, ref.rows); // bit-identical, not just equivalent
    EXPECT_EQ(got.digest(), ref.digest());
}

TEST(CompressedExecutor, MatchesUncompressedOracle)
{
    CompressWorld &w = cworld();
    for (size_t li = 0; li < w.plain.size(); ++li) {
        ASSERT_TRUE(w.comp[li]->compressed());
        ASSERT_FALSE(w.plain[li]->compressed());
        for (const Query &q : w.queries) {
            // The uncompressed row-at-a-time loop is the oracle.
            Executor oracle(*w.plain[li]);
            oracle.setVectorized(false);
            ResultSet ref = oracle.run(q);

            for (size_t threads : {1u, 2u, 4u, 8u}) {
                Executor exec(*w.comp[li], threads);
                expectSame(exec.run(q), ref);

                // Block-unaligned morsels: sub-block eval ranges.
                Executor small(*w.comp[li], threads);
                small.setMorselRows(64);
                expectSame(small.run(q), ref);

                // Non-vectorized compressed: the row loop decodes
                // through the compression-aware readers.
                Executor rowloop(*w.comp[li], threads);
                rowloop.setVectorized(false);
                expectSame(rowloop.run(q), ref);
            }
        }
    }
}

TEST(CompressedExecutor, FootprintShrinksAndCountersTick)
{
    CompressWorld &w = cworld();
    if (w.cfg.numDocs < kZoneRows * 2)
        GTEST_SKIP() << "too few docs to seal a block";

    // The NoBench store is dominated by ~1%-dense sparse columns (row
    // layout materializes their NULLs) and clustered ids: compression
    // must reclaim a multiple, not a margin (acceptance: >= 3x on the
    // row layout).
    size_t raw = w.plain[0]->storageBytes();
    size_t used = w.comp[0]->bytesUsed();
    EXPECT_EQ(w.plain[0]->bytesUsed(), raw);
    EXPECT_GE(raw, used * 3)
        << "row-layout footprint ratio " << double(raw) / double(used);

    uint64_t before = 0;
    auto &reg = obs::Registry::global();
    for (size_t p = 0; p < k::kCompressedPaths; ++p)
        before += reg.counter(std::string(
                                  "dvp_compressed_eval_total{path=\"") +
                              k::compressedPathName(
                                  static_cast<k::CompressedPath>(p)) +
                              "\"}")
                      .value();
    Executor exec(*w.comp[0]);
    exec.run(w.queries[4 % w.queries.size()]); // any predicate scan
    for (const Query &q : w.queries)
        exec.run(q);
    uint64_t after = 0;
    for (size_t p = 0; p < k::kCompressedPaths; ++p)
        after += reg.counter(std::string(
                                 "dvp_compressed_eval_total{path=\"") +
                             k::compressedPathName(
                                 static_cast<k::CompressedPath>(p)) +
                             "\"}")
                     .value();
    EXPECT_GT(after, before)
        << "no compressed-block evaluation was exercised";
}

TEST(CompressedAdaptive, SurvivesRepartitionSwap)
{
    nobench::Config cfg;
    cfg.numDocs = std::min<size_t>(testDocs(), 4096 + 512);
    cfg.seed = 77;
    if (cfg.numDocs < kZoneRows * 2)
        GTEST_SKIP() << "too few docs to seal a block";
    DataSet data = nobench::generateDataSet(cfg);
    nobench::QuerySet qs(data, cfg);
    Rng rng(79);

    std::vector<Query> initial;
    for (int t = 0; t < 3; ++t)
        initial.push_back(qs.instantiate(t, rng));

    adaptive::Params prm;
    prm.window = 20;
    prm.changeThreshold = 0.2;
    prm.background = false; // synchronous swap: deterministic
    prm.compress = true;
    adaptive::AdaptiveEngine eng(data, initial, prm);
    ASSERT_TRUE(eng.snapshot()->compressed());

    std::vector<Query> shifted;
    for (int t = 0; t < nobench::kNumTemplates; ++t)
        shifted.push_back(qs.instantiateShifted(t, rng));
    Rng pick(83);
    for (int r = 0;
         r < 200 && eng.adaptation().repartitions.load() == 0; ++r)
        eng.execute(shifted[pick.below(shifted.size())]);
    ASSERT_GE(eng.adaptation().repartitions.load(), 1u)
        << "shifted workload did not trigger a repartition";

    // The swapped-in database is still compressed, has sealed blocks,
    // and answers queries identically to an uncompressed twin built on
    // the swapped-in layout.
    std::shared_ptr<Database> db = eng.snapshot();
    ASSERT_TRUE(db->compressed());
    bool any_sealed = false;
    for (size_t t = 0; t < db->tableCount(); ++t)
        any_sealed = any_sealed || db->table(t).sealedRows() > 0;
    EXPECT_TRUE(any_sealed);
    EXPECT_LT(db->bytesUsed(), db->storageBytes());

    Database twin(data, db->layout(), "twin");
    for (const Query &q : shifted) {
        Executor a(*db), b(twin);
        expectSame(a.run(q), b.run(q));
    }
}

TEST(NullPredicates, SqlParsesAndMatchesDocScan)
{
    CompressWorld &w = cworld();
    storage::AttrId sparse = w.data.catalog.find("sparse_107");
    ASSERT_NE(sparse, storage::kNoAttr);

    sql::ParseResult isn = sql::parse(
        "SELECT num FROM nobench_main WHERE sparse_107 IS NULL",
        w.data);
    ASSERT_TRUE(isn.ok) << isn.error;
    EXPECT_EQ(isn.query.cond.op, CondOp::IsNull);
    EXPECT_EQ(isn.query.cond.attr, sparse);

    sql::ParseResult nn = sql::parse(
        "SELECT num FROM nobench_main WHERE sparse_107 IS NOT NULL",
        w.data);
    ASSERT_TRUE(nn.ok) << nn.error;
    EXPECT_EQ(nn.query.cond.op, CondOp::NotNull);

    EXPECT_FALSE(
        sql::parse("SELECT num FROM t WHERE sparse_107 IS 3", w.data)
            .ok);

    // Engine answers against the document-level truth: NOT NULL means
    // a non-null cell; IS NULL means present-but-null-or-missing.
    std::set<int64_t> not_null, present;
    for (const auto &doc : w.data.docs) {
        if (!storage::isNull(doc.slotOf(sparse)))
            not_null.insert(doc.oid);
        for (const auto &[a, s] : doc.attrs)
            if (!storage::isNull(s)) {
                present.insert(doc.oid);
                break;
            }
    }
    for (size_t li = 0; li < w.plain.size(); ++li) {
        for (Database *db : {w.plain[li].get(), w.comp[li].get()}) {
            Executor exec(*db);
            ResultSet rnn = exec.run(nn.query);
            ASSERT_EQ(rnn.oids.size(), not_null.size()) << db->name();
            for (int64_t o : rnn.oids)
                EXPECT_TRUE(not_null.count(o));

            ResultSet rin = exec.run(isn.query);
            ASSERT_EQ(rin.oids.size(),
                      present.size() - not_null.size())
                << db->name();
            for (int64_t o : rin.oids)
                EXPECT_TRUE(present.count(o) && !not_null.count(o));
        }
    }
}

TEST(NullPredicates, ZonePruningSkipsDecidedBlocks)
{
    // Hand-built store: attribute "b" is non-null only for the first
    // 100 objects, so every later block is all-null in b's column and
    // a NOT NULL scan must skip it via the zone nonnull count.
    DataSet data;
    for (size_t i = 0; i < kZoneRows * 3; ++i) {
        std::vector<json::FlatAttr> flat;
        flat.push_back({"a", json::JsonValue(static_cast<int64_t>(i))});
        if (i < 100)
            flat.push_back(
                {"b", json::JsonValue(static_cast<int64_t>(i * 2))});
        else if (i % 2 == 0)
            flat.push_back({"b", json::JsonValue()}); // explicit null
        data.addFlat(flat);
    }
    storage::AttrId b = data.catalog.find("b");
    ASSERT_NE(b, storage::kNoAttr);

    Database db(data, Layout::rowBased(data.catalog.allAttrs()), "row",
                true, nullptr, true);
    Query q;
    q.name = "Qb";
    q.kind = QueryKind::Select;
    q.projected = {b};
    q.cond.op = CondOp::NotNull;
    q.cond.attr = b;

    auto &reg = obs::Registry::global();
    uint64_t skipped = reg.counter("dvp_blocks_skipped_total").value();
    Executor exec(db);
    ResultSet rs = exec.run(q);
    EXPECT_EQ(rs.rowCount(), 100u);
    EXPECT_GE(reg.counter("dvp_blocks_skipped_total").value(),
              skipped + 2)
        << "all-null trailing blocks were not pruned";
}

// ---------------------------------------------------------------------
// 5. Observability
// ---------------------------------------------------------------------

TEST(Observability, FootprintGaugesPublished)
{
    CompressWorld &w = cworld();
    if (w.cfg.numDocs < kZoneRows * 2)
        GTEST_SKIP() << "too few docs to seal a block";
    auto &reg = obs::Registry::global();

    // Re-publish (construction already did once) and check both forms.
    w.comp[0]->publishFootprint();
    w.plain[0]->publishFootprint();
    std::string raw_name = "dvp_db_bytes{db=\"" + w.comp[0]->name() +
                           "\",form=\"raw\"}";
    std::string used_name = "dvp_db_bytes{db=\"" + w.comp[0]->name() +
                            "\",form=\"used\"}";
    ASSERT_TRUE(reg.contains(raw_name));
    ASSERT_TRUE(reg.contains(used_name));
    EXPECT_EQ(reg.gauge(raw_name).value(),
              static_cast<int64_t>(w.comp[0]->storageBytes()));
    EXPECT_EQ(reg.gauge(used_name).value(),
              static_cast<int64_t>(w.comp[0]->bytesUsed()));
    EXPECT_LT(reg.gauge(used_name).value(), reg.gauge(raw_name).value());

    // Per-partition gauges exist for partition 0 of each db.
    EXPECT_TRUE(reg.contains("dvp_partition_bytes{db=\"" +
                        w.comp[0]->name() +
                        "\",part=\"0\",form=\"used\"}"));

    // Both exporters carry them.
    std::string prom = obs::exportPrometheus(reg);
    EXPECT_NE(prom.find("dvp_partition_bytes"), std::string::npos);
    EXPECT_NE(prom.find("dvp_db_bytes"), std::string::npos);
    std::string ascii = obs::asciiSnapshot(reg);
    EXPECT_NE(ascii.find("dvp_partition_bytes"), std::string::npos);
}

TEST(Observability, AttrBytesFeedTheCostModel)
{
    CompressWorld &w = cworld();
    std::vector<double> bytes = w.comp[1]->attrBytesPerDoc();
    ASSERT_FALSE(bytes.empty());

    storage::AttrId num = w.data.catalog.find("num");
    storage::AttrId sparse = w.data.catalog.find("sparse_107");
    ASSERT_NE(num, storage::kNoAttr);
    ASSERT_NE(sparse, storage::kNoAttr);
    // A dense wide column costs more per doc than a 1%-dense one.
    EXPECT_GT(bytes[num], bytes[sparse]);

    // memoryWeight = 0 keeps Eq. 9 untouched; a memory-weighted model
    // charges the column layout (duplicated oids) its full normalizer.
    core::CostParams cp;
    cp.memoryWeight = 0.5;
    cp.attrBytes = bytes;
    std::vector<Query> queries(w.queries.begin(), w.queries.begin() + 4);
    core::CostModel m(w.data.catalog, queries, cp);
    const std::vector<storage::AttrId> attrs = w.data.catalog.allAttrs();
    double mem_col = m.mem(Layout::columnBased(attrs));
    double mem_row = m.mem(Layout::rowBased(attrs));
    EXPECT_GT(m.memMax(), 0.0);
    EXPECT_LE(mem_col, m.memMax() * (1 + 1e-9));
    EXPECT_GE(mem_col, m.memMax() * (1 - 1e-9)); // column IS the max
    EXPECT_LT(mem_row, mem_col);

    core::CostParams off;
    core::CostModel m0(w.data.catalog, queries, off);
    Layout hybrid = Layout::fixedSize(attrs, 4);
    EXPECT_NEAR(m0.combine(m0.rac(hybrid), m0.cpc(hybrid)),
                m0.cost(hybrid), 1e-12);
}

} // namespace
} // namespace dvp
