/**
 * @file
 * Tape-parser and parallel-load tests (DESIGN.md §17).
 *
 * Contracts:
 *  1. Differential identity — TapeParser::flatten agrees with DOM
 *     parse()+flatten() on verdict AND FlatAttr list for handcrafted
 *     edge cases (numbers, escapes, surrogates, NaN-adjacent text) and
 *     for a randomized fuzz corpus (valid generated documents plus
 *     mutations), under both index forms.
 *  2. Index equivalence — the AVX2 structural index is
 *     position-for-position identical to the scalar one.
 *  3. Explicit-stack depth — 100k-deep inputs error cleanly at the
 *     default cap in both parsers, the DOM parser clamps huge caller
 *     caps instead of overflowing the C stack, and the tape walker
 *     genuinely flattens 100k-deep input when its cap is raised.
 *  4. Duplicate keys — detected and answered through the DOM fallback
 *     with output identical to DOM flatten.
 *  5. Loader — parseLines-compatible error/line semantics, and
 *     parallel tape LOAD bit-identical to serial DOM LOAD: same
 *     documents, same query digests across row/column/DVP layouts.
 *
 * The whole binary runs twice in ctest (plain and DVP_FORCE_SCALAR=1),
 * so the Auto dispatch path is exercised in both outcomes.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "engine/database.hh"
#include "engine/executor.hh"
#include "engine/load.hh"
#include "engine/query.hh"
#include "json/flatten.hh"
#include "json/parser.hh"
#include "json/tape.hh"
#include "json/writer.hh"
#include "layout/layout.hh"
#include "nobench/generator.hh"
#include "nobench/queries.hh"
#include "obs/metrics.hh"
#include "util/random.hh"

namespace dvp
{
namespace
{

using engine::Database;
using engine::DataSet;
using engine::Executor;
using engine::LoadOptions;
using engine::LoadParser;
using engine::LoadStats;
using engine::Query;
using engine::ResultSet;
using json::FlatAttr;
using json::JsonValue;
using json::TapeForm;
using json::TapeParser;
using layout::Layout;

/** DOM oracle: verdict + flat list, matching the tape contract. */
struct OracleResult
{
    bool ok = false;
    std::vector<FlatAttr> flat;
};

OracleResult
domOracle(std::string_view doc, int max_depth = json::kTapeDefaultMaxDepth)
{
    OracleResult r;
    json::ParseResult res = json::parse(doc, max_depth);
    if (!res.ok || !res.value.isObject())
        return r;
    r.ok = true;
    r.flat = json::flatten(res.value);
    return r;
}

/** Assert one form of the tape parser matches the oracle on @p doc. */
void
expectMatchesOracle(TapeParser &tape, const std::string &doc)
{
    OracleResult ref = domOracle(doc);
    std::vector<FlatAttr> got;
    bool ok = tape.flatten(doc, got);
    ASSERT_EQ(ok, ref.ok) << "verdict mismatch on: " << doc
                          << (ok ? "" : " tape error: " + tape.error());
    if (!ok)
        return;
    ASSERT_EQ(got.size(), ref.flat.size()) << "attr count on: " << doc;
    for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].path, ref.flat[i].path) << "path " << i
                                                 << " on: " << doc;
        EXPECT_TRUE(got[i].value == ref.flat[i].value)
            << "value at " << got[i].path << " on: " << doc;
    }
}

/** Run the oracle comparison under every available index form. */
void
expectDifferential(const std::string &doc)
{
    TapeParser scalar;
    scalar.setForm(TapeForm::Scalar);
    expectMatchesOracle(scalar, doc);
    if (json::tapeSimdAvailable()) {
        TapeParser simd;
        simd.setForm(TapeForm::Simd);
        expectMatchesOracle(simd, doc);
    }
    TapeParser aut; // whatever dispatch (incl. DVP_FORCE_SCALAR) picked
    expectMatchesOracle(aut, doc);
}

// ---------------------------------------------------------------------
// 1. Differential identity: handcrafted cases
// ---------------------------------------------------------------------

TEST(TapeDifferential, BasicDocuments)
{
    expectDifferential(R"({})");
    expectDifferential(R"({"a":1})");
    expectDifferential(R"( { "a" : 1 , "b" : "x" } )");
    expectDifferential(R"({"a":{"b":{"c":true}},"d":[1,2,3]})");
    expectDifferential(R"({"a":[],"b":{},"c":null})");
    expectDifferential(R"({"arr":[[1,2],[3,[4,5]],{"k":"v"}]})");
    expectDifferential(R"({"a": [ ] , "b" : [ { } , [ ] ] })");
    expectDifferential("{\"a\":\t\n 1\r}");
    expectDifferential(R"({"":1})");            // empty key
    expectDifferential(R"({"":{"":2}})");
    expectDifferential(R"({"a.b":1,"a":{"b":2}})"); // ambiguous paths
}

TEST(TapeDifferential, NumberEdgeCases)
{
    expectDifferential(R"({"n":0})");
    expectDifferential(R"({"n":-0})");
    expectDifferential(R"({"n":007})");         // leading zeros accepted
    expectDifferential(R"({"n":-9223372036854775808})"); // INT64_MIN
    expectDifferential(R"({"n":9223372036854775807})");  // INT64_MAX
    expectDifferential(R"({"n":9223372036854775808})");  // overflow->double
    expectDifferential(R"({"n":123456789012345678901234567890})");
    expectDifferential(R"({"n":0.5})");
    expectDifferential(R"({"n":-0.0})");
    expectDifferential(R"({"n":1e3})");
    expectDifferential(R"({"n":1E+3})");
    expectDifferential(R"({"n":1.25e-2})");
    expectDifferential(R"({"n":1e999})");       // inf -> rejected
    expectDifferential(R"({"n":-1e999})");
    expectDifferential(R"({"n":1e-999})");      // underflow -> 0.0
    expectDifferential(R"({"n":1.})");          // rejected
    expectDifferential(R"({"n":.5})");          // rejected
    expectDifferential(R"({"n":1e})");          // rejected
    expectDifferential(R"({"n":1e+})");         // rejected
    expectDifferential(R"({"n":--1})");         // rejected
    expectDifferential(R"({"n":+1})");          // rejected
    expectDifferential(R"({"n":-})");           // rejected
    expectDifferential(R"({"n":1 2})");         // junk after number
    expectDifferential(R"({"n":0x10})");        // rejected
    expectDifferential(R"({"n":18446744073709551615})"); // > INT64, double
}

TEST(TapeDifferential, NaNAdjacentInputs)
{
    expectDifferential(R"({"n":NaN})");
    expectDifferential(R"({"n":nan})");
    expectDifferential(R"({"n":Infinity})");
    expectDifferential(R"({"n":-Infinity})");
    expectDifferential(R"({"n":inf})");
    expectDifferential(R"({"n":nul})");
    expectDifferential(R"({"n":nullx})");
    expectDifferential(R"({"n":truefalse})");
    expectDifferential(R"({"n":TRUE})");
}

TEST(TapeDifferential, StringsEscapesAndSurrogates)
{
    expectDifferential(R"({"s":""})");
    expectDifferential(R"({"s":"plain"})");
    expectDifferential(R"({"s":"a\"b"})");
    expectDifferential(R"({"s":"a\\"})");
    expectDifferential(R"({"s":"\\\""})");
    expectDifferential(R"({"s":"\/\b\f\n\r\t"})");
    expectDifferential(R"({"s":"Aé中"})");
    expectDifferential(R"({"s":"𝄞"})");     // surrogate pair
    expectDifferential(R"({"s":"𝄞!"})");
    expectDifferential(R"({"s":"\ud834"})");           // unpaired high
    expectDifferential(R"({"s":"\ud834A"})");     // bad low
    expectDifferential(R"({"s":"\udd1e"})");           // lone low
    expectDifferential(R"({"s":"\ud834\ud834"})");     // high + high
    expectDifferential(R"({"s":"\u12"})");             // short hex
    expectDifferential(R"({"s":"\uzzzz"})");           // bad hex
    expectDifferential(R"({"s":"\x41"})");             // bad escape
    expectDifferential("{\"s\":\"a\x01b\"}");          // raw control char
    expectDifferential("{\"s\":\"tab\tchar\"}");       // raw tab in string
    expectDifferential("{\"\\u0061\":1}");             // escaped key
    expectDifferential(R"({"k\"ey":1})");
    expectDifferential("{\"s\":\"caf\xc3\xa9\"}");     // raw UTF-8 passes
    // Escaped quotes and backslashes stressing the structural index
    // around 64-byte block boundaries.
    std::string long_esc = R"({"s":")";
    for (int i = 0; i < 40; ++i)
        long_esc += R"(\\\")";
    long_esc += R"(","t":1})";
    expectDifferential(long_esc);
}

TEST(TapeDifferential, StructuralErrors)
{
    expectDifferential("");
    expectDifferential("   ");
    expectDifferential(R"({)");
    expectDifferential(R"(})");
    expectDifferential(R"({"a":1)");
    expectDifferential(R"({"a":1}})");
    expectDifferential(R"({"a":1} )");
    expectDifferential(R"({"a":1}{"b":2})");
    expectDifferential(R"({"a" 1})");
    expectDifferential(R"({"a"::1})");
    expectDifferential(R"({"a":1,})");
    expectDifferential(R"({,"a":1})");
    expectDifferential(R"({"a":[1,]})");
    expectDifferential(R"({"a":[,1]})");
    expectDifferential(R"({"a":[1 2]})");
    expectDifferential(R"({"a":[1,2)})");
    expectDifferential(R"({"a":{"b":1])");
    expectDifferential(R"({"a")");
    expectDifferential(R"({"a":})");
    expectDifferential(R"({"a":"unterminated)");
    expectDifferential(R"({x:1})");
    expectDifferential(R"({"a":1 "b":2})");
    expectDifferential(R"({"a":1,,"b":2})");
    // Non-object roots: rejected by the ingest contract.
    expectDifferential(R"(1)");
    expectDifferential(R"("str")");
    expectDifferential(R"([1,2])");
    expectDifferential(R"(null)");
    expectDifferential(R"(true)");
}

// ---------------------------------------------------------------------
// 2. Structural-index equivalence (scalar vs AVX2)
// ---------------------------------------------------------------------

TEST(TapeIndex, SimdMatchesScalarPositionForPosition)
{
    if (!json::tapeSimdAvailable())
        GTEST_SKIP() << "no AVX2 on this machine";
    nobench::Config cfg;
    cfg.numDocs = 50;
    std::string lines = nobench::generateJsonLines(cfg, cfg.numDocs);
    std::vector<std::string> docs;
    size_t start = 0;
    while (start < lines.size()) {
        size_t nl = lines.find('\n', start);
        docs.push_back(lines.substr(start, nl - start));
        start = nl + 1;
    }
    // Adversarial strings for the block-wise escape fallback: quotes
    // and backslashes straddling 64-byte boundaries.
    Rng rng(99);
    for (int i = 0; i < 200; ++i) {
        std::string s = "{\"k\":\"";
        size_t n = rng.below(200);
        for (size_t k = 0; k < n; ++k) {
            switch (rng.below(6)) {
              case 0: s += "\\\\"; break;
              case 1: s += "\\\""; break;
              case 2: s += '"'; break; // may make it invalid: fine
              case 3: s += '{'; break;
              case 4: s += 'x'; break;
              default: s += ' '; break;
            }
        }
        s += "\"}";
        docs.push_back(s);
    }
    TapeParser scalar, simd;
    scalar.setForm(TapeForm::Scalar);
    simd.setForm(TapeForm::Simd);
    for (const std::string &doc : docs) {
        ASSERT_TRUE(scalar.index(doc));
        ASSERT_TRUE(simd.index(doc));
        ASSERT_EQ(scalar.structuralCount(), simd.structuralCount())
            << doc;
        for (size_t i = 0; i < scalar.structuralCount(); ++i)
            ASSERT_EQ(scalar.structurals()[i], simd.structurals()[i])
                << doc << " @" << i;
    }
}

// ---------------------------------------------------------------------
// 3. Deep nesting: explicit stack vs recursion
// ---------------------------------------------------------------------

std::string
deepDoc(size_t depth)
{
    std::string doc = R"({"a":)";
    doc.append(depth, '[');
    doc += '1';
    doc.append(depth, ']');
    doc += '}';
    return doc;
}

TEST(TapeDepth, HundredKDeepErrorsCleanlyAtDefaultCap)
{
    std::string doc = deepDoc(100000);
    // DOM parser: default cap, bounded recursion, clean error.
    json::ParseResult res = json::parse(doc);
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.error.find("depth"), std::string::npos);
    // DOM parser: a huge caller-supplied cap is clamped, not honored
    // into a stack overflow.
    res = json::parse(doc, 200000);
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.error.find("depth"), std::string::npos);
    // Tape walker: default cap, clean error.
    TapeParser tape;
    std::vector<FlatAttr> flat;
    EXPECT_FALSE(tape.flatten(doc, flat));
    EXPECT_NE(tape.error().find("depth"), std::string::npos);
}

TEST(TapeDepth, ExplicitStackFlattens100kDeepWhenCapRaised)
{
    const size_t kDepth = 100000;
    std::string doc = deepDoc(kDepth);
    TapeParser tape;
    tape.setMaxDepth(static_cast<int>(kDepth) + 10);
    std::vector<FlatAttr> flat;
    ASSERT_TRUE(tape.flatten(doc, flat)) << tape.error();
    ASSERT_EQ(flat.size(), 1u);
    EXPECT_TRUE(flat[0].value == JsonValue(static_cast<int64_t>(1)));
    // Path is "a[0][0]...[0]" with kDepth index steps.
    EXPECT_EQ(flat[0].path.size(), 1 + 3 * kDepth);
}

TEST(TapeDepth, DepthSemanticsMatchDomAtBoundary)
{
    // Value at nesting level k fails exactly when k > cap, as in the
    // DOM parser's parseValue entry check.
    for (int cap = 0; cap <= 3; ++cap) {
        for (int depth = 1; depth <= 4; ++depth) {
            std::string doc = R"({"a":)";
            for (int i = 1; i < depth; ++i)
                doc += R"({"a":)";
            doc += '1';
            doc.append(static_cast<size_t>(depth), '}');
            json::ParseResult res = json::parse(doc, cap);
            TapeParser tape;
            tape.setMaxDepth(cap);
            std::vector<FlatAttr> flat;
            bool tape_ok = tape.flatten(doc, flat);
            EXPECT_EQ(tape_ok, res.ok)
                << "cap=" << cap << " depth=" << depth;
        }
    }
}

// ---------------------------------------------------------------------
// 4. Duplicate keys: DOM fallback
// ---------------------------------------------------------------------

TEST(TapeDupKeys, FallbackMatchesDomExactly)
{
    const char *cases[] = {
        R"({"a":1,"a":2})",
        R"({"a":{"x":1},"a":{"y":2}})",  // subtree replacement
        R"({"a":1,"b":2,"a":3})",        // first position, last value
        R"({"o":{"k":1,"k":2},"t":3})",  // nested dup
        R"({"a":[{"k":1,"k":2}]})",
        "{\"\\u0061\":1,\"a\":2}",       // dup via escape spelling
        R"({"a":1,"a":})",               // dup then error
    };
    for (const char *doc : cases) {
        TapeParser tape;
        uint64_t before = tape.fallbacks();
        expectMatchesOracle(tape, doc);
        EXPECT_GT(tape.fallbacks(), before) << doc;
    }
    // No false fallback on distinct keys.
    TapeParser tape;
    std::vector<FlatAttr> flat;
    ASSERT_TRUE(tape.flatten(R"({"a":1,"b":{"a":2},"c":[{"a":3}]})",
                             flat));
    EXPECT_EQ(tape.fallbacks(), 0u);
}

// ---------------------------------------------------------------------
// 5. Differential fuzz
// ---------------------------------------------------------------------

/** Random JSON text generator emitting quirky-but-valid spellings. */
struct FuzzGen
{
    Rng rng;

    explicit FuzzGen(uint64_t seed) : rng(seed) {}

    std::string
    document()
    {
        std::string s = "{";
        size_t members = rng.below(5);
        for (size_t i = 0; i < members; ++i) {
            if (i != 0)
                s += ',';
            ws(s);
            key(s, i);
            ws(s);
            s += ':';
            value(s, 0);
        }
        ws(s);
        s += '}';
        return s;
    }

    void
    ws(std::string &s)
    {
        static const char *kWs[] = {"", "", " ", "  ", "\t", "\n", " \r "};
        s += kWs[rng.below(7)];
    }

    void
    key(std::string &s, size_t i)
    {
        // Unique keys per object level (dup keys tested separately);
        // the suffix keeps them distinct even with fancy spellings.
        s += '"';
        stringBody(s);
        s += "_k" + std::to_string(i) + '"';
    }

    void
    stringBody(std::string &s)
    {
        size_t n = rng.below(12);
        for (size_t i = 0; i < n; ++i) {
            switch (rng.below(12)) {
              case 0: s += "\\\\"; break;
              case 1: s += "\\\""; break;
              case 2: s += "\\n"; break;
              case 3: s += "\\u00e9"; break;
              case 4: s += "\\ud834\\udd1e"; break;
              case 5: s += "\\t"; break;
              case 6: s += "\\/"; break;
              case 7: s += "\xc3\xa9"; break; // raw UTF-8
              default:
                s += static_cast<char>('a' + rng.below(26));
                break;
            }
        }
    }

    void
    value(std::string &s, int depth)
    {
        ws(s);
        uint64_t pick = rng.below(depth >= 4 ? 7 : 10);
        switch (pick) {
          case 0: s += "null"; break;
          case 1: s += "true"; break;
          case 2: s += "false"; break;
          case 3: number(s); break;
          case 4: number(s); break;
          case 5:
            s += '"';
            stringBody(s);
            s += '"';
            break;
          case 6: number(s); break;
          case 7: { // array
            s += '[';
            size_t n = rng.below(4);
            for (size_t i = 0; i < n; ++i) {
                if (i != 0)
                    s += ',';
                value(s, depth + 1);
            }
            ws(s);
            s += ']';
            break;
          }
          default: { // object
            s += '{';
            size_t n = rng.below(4);
            for (size_t i = 0; i < n; ++i) {
                if (i != 0)
                    s += ',';
                ws(s);
                key(s, i);
                ws(s);
                s += ':';
                value(s, depth + 1);
            }
            ws(s);
            s += '}';
            break;
          }
        }
        ws(s);
    }

    void
    number(std::string &s)
    {
        switch (rng.below(8)) {
          case 0: s += std::to_string(rng.next() % 1000); break;
          case 1:
            s += '-';
            s += std::to_string(rng.next() % 1000);
            break;
          case 2: s += "0"; break;
          case 3: s += "00" + std::to_string(rng.below(100)); break;
          case 4:
            s += std::to_string(rng.next()); // up to 20 digits
            break;
          case 5:
            s += std::to_string(rng.below(100));
            s += '.';
            s += std::to_string(rng.below(1000));
            break;
          case 6:
            s += std::to_string(rng.below(100));
            s += rng.chance(0.5) ? "e" : "E";
            s += rng.chance(0.5) ? "+" : "-";
            s += std::to_string(rng.below(300));
            break;
          default:
            s += std::to_string(rng.below(10));
            s += '.';
            s += std::to_string(rng.below(10));
            s += 'e';
            s += std::to_string(rng.below(40));
            break;
        }
    }
};

TEST(TapeFuzz, ValidDocumentsMatchOracle)
{
    FuzzGen gen(20260808);
    for (int i = 0; i < 3000; ++i)
        expectDifferential(gen.document());
}

TEST(TapeFuzz, MutatedDocumentsMatchOracleVerdict)
{
    FuzzGen gen(4242);
    static const char kJunk[] = "{}[]:,\"\\0123456789eE.+-xntf \x01";
    for (int i = 0; i < 3000; ++i) {
        std::string doc = gen.document();
        // One random mutation: overwrite, insert, or truncate.
        switch (gen.rng.below(3)) {
          case 0:
            if (!doc.empty())
                doc[gen.rng.below(doc.size())] =
                    kJunk[gen.rng.below(sizeof(kJunk) - 1)];
            break;
          case 1:
            doc.insert(gen.rng.below(doc.size() + 1), 1,
                       kJunk[gen.rng.below(sizeof(kJunk) - 1)]);
            break;
          default:
            doc.resize(gen.rng.below(doc.size() + 1));
            break;
        }
        // Mutations can create duplicate keys only by mangling the
        // unique suffixes into equality, which the hash check routes
        // through the DOM anyway — output stays oracle-identical.
        expectDifferential(doc);
    }
}

// ---------------------------------------------------------------------
// 6. Loader semantics
// ---------------------------------------------------------------------

TEST(Loader, ErrorLineNumbersMatchParseLines)
{
    const std::string text = "{\"a\":1}\n"
                             "\n"
                             "  \n"
                             "{\"b\":2}\n"
                             "{broken\n"
                             "{\"c\":3}\n";
    // Oracle: parseLines keeps docs before the error and reports the
    // 1-based line number.
    std::string ref_err;
    auto ref_docs = json::parseLines(text, &ref_err);
    ASSERT_EQ(ref_docs.size(), 2u);
    ASSERT_EQ(ref_err.rfind("line 5:", 0), 0u) << ref_err;

    for (size_t threads : {1u, 4u}) {
        DataSet data;
        LoadOptions opt;
        opt.threads = threads;
        LoadStats stats;
        std::string err = engine::loadNdjson(data, text, opt, &stats);
        EXPECT_EQ(err.rfind("line 5:", 0), 0u) << err;
        EXPECT_EQ(data.docs.size(), 2u);
        EXPECT_EQ(stats.docs, 2u);
    }
}

TEST(Loader, EmptyAndBlankInputs)
{
    for (const std::string &text : {std::string(), std::string("\n\n  \n")}) {
        DataSet data;
        LoadOptions opt;
        std::string err = engine::loadNdjson(data, text, opt);
        EXPECT_EQ(err, "");
        EXPECT_EQ(data.docs.size(), 0u);
    }
}

TEST(Loader, DomParserOptionLoadsIdentically)
{
    nobench::Config cfg;
    cfg.numDocs = 200;
    std::string lines = nobench::generateJsonLines(cfg, cfg.numDocs);
    DataSet via_tape, via_dom;
    LoadOptions tape_opt;
    LoadOptions dom_opt;
    dom_opt.parser = LoadParser::Dom;
    ASSERT_EQ(engine::loadNdjson(via_tape, lines, tape_opt), "");
    ASSERT_EQ(engine::loadNdjson(via_dom, lines, dom_opt), "");
    ASSERT_EQ(via_tape.docs.size(), via_dom.docs.size());
    for (size_t i = 0; i < via_tape.docs.size(); ++i) {
        EXPECT_EQ(via_tape.docs[i].oid, via_dom.docs[i].oid);
        EXPECT_EQ(via_tape.docs[i].attrs, via_dom.docs[i].attrs);
    }
    EXPECT_EQ(via_tape.catalog.attrCount(), via_dom.catalog.attrCount());
}

// ---------------------------------------------------------------------
// 7. Parallel LOAD: bit-identical databases, digest-verified
// ---------------------------------------------------------------------

size_t
testDocs()
{
    if (const char *env = std::getenv("DVP_TEST_DOCS"))
        return std::strtoull(env, nullptr, 10);
    return 3000;
}

TEST(ParallelLoad, DigestsMatchSerialDomLoadAcrossLayouts)
{
    nobench::Config cfg;
    cfg.numDocs = testDocs();
    cfg.seed = 777;
    std::string lines = nobench::generateJsonLines(cfg, cfg.numDocs);

    // Reference: serial DOM load (the pre-tape ingestion pipeline).
    DataSet ref;
    nobench::registerCatalog(ref.catalog);
    LoadOptions ref_opt;
    ref_opt.parser = LoadParser::Dom;
    ASSERT_EQ(engine::loadNdjson(ref, lines, ref_opt), "");

    nobench::QuerySet qs(ref, cfg);
    Rng qrng(17);
    std::vector<Query> queries;
    for (int t = 0; t < nobench::kNumTemplates; ++t)
        queries.push_back(qs.instantiate(t, qrng));

    const std::vector<storage::AttrId> attrs = ref.catalog.allAttrs();
    const struct
    {
        Layout layout;
        const char *name;
    } layouts[] = {
        {Layout::rowBased(attrs), "row"},
        {Layout::columnBased(attrs), "column"},
        {Layout::fixedSize(attrs, 4), "dvp4"},
    };

    for (size_t threads : {1u, 2u, 8u}) {
        DataSet got;
        nobench::registerCatalog(got.catalog);
        LoadOptions opt;
        opt.threads = threads;
        ASSERT_EQ(engine::loadNdjson(got, lines, opt), "");

        // Document-level identity first (oids, attrs, slots).
        ASSERT_EQ(got.docs.size(), ref.docs.size());
        for (size_t i = 0; i < got.docs.size(); ++i) {
            ASSERT_EQ(got.docs[i].oid, ref.docs[i].oid);
            ASSERT_EQ(got.docs[i].attrs, ref.docs[i].attrs)
                << "doc " << i << " threads=" << threads;
        }
        ASSERT_EQ(got.catalog.attrCount(), ref.catalog.attrCount());

        // Then query-digest identity across layouts.
        for (const auto &l : layouts) {
            Database ref_db(ref, l.layout, l.name);
            Database got_db(got, l.layout, l.name);
            for (const Query &q : queries) {
                Executor ref_ex(ref_db);
                Executor got_ex(got_db);
                ResultSet want = ref_ex.run(q);
                ResultSet have = got_ex.run(q);
                EXPECT_EQ(have.rowCount(), want.rowCount());
                EXPECT_EQ(have.oids, want.oids);
                EXPECT_EQ(have.rows, want.rows);
                EXPECT_EQ(have.digest(), want.digest())
                    << l.name << " " << q.name
                    << " threads=" << threads;
            }
        }
    }
}

TEST(ParallelLoad, NdjsonGeneratorRoundTripIsBitIdentical)
{
    nobench::Config cfg;
    cfg.numDocs = 500;
    cfg.seed = 31;
    DataSet direct = nobench::generateDataSet(cfg);
    for (size_t threads : {1u, 4u}) {
        DataSet round = nobench::generateDataSetNdjson(cfg, threads);
        ASSERT_EQ(round.docs.size(), direct.docs.size());
        for (size_t i = 0; i < round.docs.size(); ++i) {
            ASSERT_EQ(round.docs[i].oid, direct.docs[i].oid);
            ASSERT_EQ(round.docs[i].attrs, direct.docs[i].attrs);
        }
        EXPECT_EQ(round.catalog.attrCount(), direct.catalog.attrCount());
    }
}

// ---------------------------------------------------------------------
// 8. Observability
// ---------------------------------------------------------------------

TEST(TapeObs, ParseCountersReachRegistry)
{
    nobench::Config cfg;
    cfg.numDocs = 64;
    std::string lines = nobench::generateJsonLines(cfg, cfg.numDocs);
    auto &reg = obs::Registry::global();
    std::string form_name =
        std::string("dvp_parse_docs_total{form=\"tape_") +
        (json::tapeSimdActive() ? "avx2" : "scalar") + "\"}";
    uint64_t docs_before = reg.counter(form_name).value();
    uint64_t bytes_before = reg.counter("dvp_parse_bytes_total").value();

    DataSet data;
    LoadOptions opt;
    LoadStats stats;
    ASSERT_EQ(engine::loadNdjson(data, lines, opt, &stats), "");
    EXPECT_EQ(stats.docs, cfg.numDocs);
    EXPECT_GT(stats.bytes, 0u);

    EXPECT_EQ(reg.counter(form_name).value(), docs_before + cfg.numDocs);
    EXPECT_EQ(reg.counter("dvp_parse_bytes_total").value(),
              bytes_before + stats.bytes);
}

} // namespace
} // namespace dvp
