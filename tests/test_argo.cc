/**
 * @file
 * Tests for the Argo mapping layers (src/argo): store shapes (Table I
 * and II of the paper), executor semantics, and result equality with
 * the partitioned engine.
 */

#include <gtest/gtest.h>

#include "argo/argo_executor.hh"
#include "argo/argo_store.hh"
#include "engine/database.hh"
#include "engine/executor.hh"
#include "json/parser.hh"
#include "nobench/generator.hh"
#include "nobench/queries.hh"
#include "perf/memory_hierarchy.hh"

namespace dvp::argo
{
namespace
{

using engine::Query;
using engine::ResultSet;
using storage::isNull;

class ArgoTiny : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const char *docs[] = {
            R"({"name":"John","manager":true,"salary":100,
                "institution":"IBM"})",
            R"({"name":"Mary","salary":200})",
        };
        for (const char *text : docs) {
            auto parsed = json::parse(text);
            ASSERT_TRUE(parsed.ok) << parsed.error;
            data.addObject(parsed.value);
        }
    }
    engine::DataSet data;
};

TEST_F(ArgoTiny, Argo1SingleTableWithTwoNullsPerRecord)
{
    ArgoStore store(data, Variant::Argo1);
    ASSERT_EQ(store.tableCount(), 1u);
    const ArgoTable &t = store.table(0);
    // 4 + 2 flattened attributes = 6 records.
    EXPECT_EQ(t.rows(), 6u);
    EXPECT_EQ(t.width(), 5u);
    // Exactly one of the three value columns is set per record: 2
    // NULLs per record (the paper's "40% of the values are null").
    EXPECT_EQ(store.nullCells(), 12u);
    EXPECT_EQ(store.nullCells() * 100 / (t.rows() * t.width()), 40u);
}

TEST_F(ArgoTiny, Argo3ThreeTablesNoNulls)
{
    ArgoStore store(data, Variant::Argo3);
    ASSERT_EQ(store.tableCount(), 3u);
    EXPECT_EQ(store.nullCells(), 0u);
    // Strings: name x2, institution x1 = 3 records in the str table.
    EXPECT_EQ(store.table(0).rows(), 3u);
    // Numerics + booleans: salary x2, manager x1.
    EXPECT_EQ(store.table(1).rows(), 3u);
    EXPECT_EQ(store.table(2).rows(), 0u);
}

TEST_F(ArgoTiny, OidOrderAndLowerBound)
{
    ArgoStore store(data, Variant::Argo1);
    const ArgoTable &t = store.table(0);
    for (size_t r = 1; r < t.rows(); ++r)
        EXPECT_LE(t.oid(r - 1), t.oid(r));
    EXPECT_EQ(t.lowerBound(0), 0u);
    EXPECT_EQ(t.lowerBound(1), 4u); // doc0 has 4 records
    EXPECT_EQ(t.lowerBound(2), 6u);
}

TEST_F(ArgoTiny, StorageAccounting)
{
    ArgoStore a1(data, Variant::Argo1);
    ArgoStore a3(data, Variant::Argo3);
    EXPECT_EQ(a1.storageBytes(), 6u * 5 * 8);
    EXPECT_EQ(a3.storageBytes(), 6u * 3 * 8);
    EXPECT_GT(a1.buildSeconds(), 0.0);
}

TEST_F(ArgoTiny, ProjectionFindsValues)
{
    ArgoStore store(data, Variant::Argo3);
    ArgoExecutor exec(store);
    Query q;
    q.kind = engine::QueryKind::Project;
    q.projected = {data.catalog.find("salary"),
                   data.catalog.find("institution")};
    ResultSet rs = exec.run(q);
    ASSERT_EQ(rs.rowCount(), 2u);
    EXPECT_EQ(rs.rows[0][0], 100);
    EXPECT_EQ(rs.rows[1][0], 200);
    EXPECT_TRUE(isNull(rs.rows[1][1])); // Mary has no institution
}

TEST_F(ArgoTiny, InsertGrowsTables)
{
    ArgoStore store(data, Variant::Argo1);
    auto parsed = json::parse(R"({"name":"Sam","salary":300})");
    ASSERT_TRUE(parsed.ok);
    data.addObject(parsed.value);
    std::vector<storage::Document> payload{data.docs.back()};
    ArgoExecutor exec(store);
    Query q12;
    q12.kind = engine::QueryKind::Insert;
    q12.insertDocs = &payload;
    exec.run(q12);
    EXPECT_EQ(store.table(0).rows(), 8u);
}

// ---------------------------------------------------------------------
// Equality with the partitioned engine on the NoBench workload.
// ---------------------------------------------------------------------

struct ArgoWorld
{
    nobench::Config cfg;
    engine::DataSet data;
    std::vector<Query> queries;
    std::vector<ResultSet> reference;

    ArgoWorld()
    {
        cfg.numDocs = 600;
        cfg.seed = 424242;
        data = nobench::generateDataSet(cfg);
        nobench::QuerySet qs(data, cfg);
        Rng rng(11);
        for (int t = 0; t < nobench::kNumTemplates; ++t)
            queries.push_back(qs.instantiate(t, rng));

        engine::Database row(
            data, layout::Layout::rowBased(data.catalog.allAttrs()),
            "row");
        engine::Executor exec(row);
        for (const auto &q : queries)
            reference.push_back(exec.run(q));
    }
};

ArgoWorld &
world()
{
    static ArgoWorld w;
    return w;
}

class ArgoEquivalence
    : public ::testing::TestWithParam<std::tuple<Variant, int>>
{
};

TEST_P(ArgoEquivalence, MatchesPartitionedEngine)
{
    auto [variant, qidx] = GetParam();
    ArgoWorld &w = world();
    ArgoStore store(w.data, variant);
    ArgoExecutor exec(store);
    ResultSet rs = exec.run(w.queries[qidx]);
    const ResultSet &ref = w.reference[qidx];
    EXPECT_EQ(rs.rowCount(), ref.rowCount());
    EXPECT_TRUE(rs.equals(ref));
    EXPECT_EQ(rs.digest(), ref.digest());
}

INSTANTIATE_TEST_SUITE_P(
    BothVariantsAllQueries, ArgoEquivalence,
    ::testing::Combine(
        ::testing::Values(Variant::Argo1, Variant::Argo3),
        ::testing::Range(0, static_cast<int>(nobench::kNumTemplates))),
    [](const auto &info) {
        return std::string(std::get<0>(info.param) == Variant::Argo1
                               ? "Argo1"
                               : "Argo3") +
               "_Q" + std::to_string(std::get<1>(info.param) + 1);
    });

TEST(ArgoTraced, CountersAccumulateAndResultsMatch)
{
    ArgoWorld &w = world();
    ArgoStore store(w.data, Variant::Argo1);
    ArgoExecutor exec(store);
    perf::MemoryHierarchy mh;
    ResultSet rs = exec.run(w.queries[nobench::kQ6], mh);
    EXPECT_TRUE(rs.equals(w.reference[nobench::kQ6]));
    EXPECT_GT(mh.counters().accesses, 0u);
}

TEST(ArgoScale, RecordCountMatchesFlattenedAttrs)
{
    ArgoWorld &w = world();
    size_t expected = 0;
    for (const auto &doc : w.data.docs)
        expected += doc.attrs.size();
    ArgoStore a1(w.data, Variant::Argo1);
    EXPECT_EQ(a1.table(0).rows(), expected);
    ArgoStore a3(w.data, Variant::Argo3);
    EXPECT_EQ(a3.table(0).rows() + a3.table(1).rows() +
                  a3.table(2).rows(),
              expected);
}

TEST(ArgoScale, ArgoTablesAreTallerThanPartitionedOnes)
{
    // The paper: Argo tables have 20x-24x more records than object
    // count, which is why projections are slow.
    ArgoWorld &w = world();
    ArgoStore a1(w.data, Variant::Argo1);
    double ratio = static_cast<double>(a1.table(0).rows()) /
                   static_cast<double>(w.data.docs.size());
    EXPECT_GT(ratio, 19.0);
    EXPECT_LT(ratio, 29.0);
}

} // namespace
} // namespace dvp::argo
