/**
 * @file
 * Tests for snapshot persistence (src/persist): round-trip fidelity
 * (catalog stats, dictionary ids, documents, layout), query-result
 * equality across a save/load cycle, and graceful rejection of
 * corrupt or truncated images.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>

#include "dvp/partitioner.hh"
#include "net/wire.hh"
#include "engine/database.hh"
#include "engine/executor.hh"
#include "nobench/generator.hh"
#include "nobench/queries.hh"
#include "nobench/workload.hh"
#include "persist/snapshot.hh"

namespace dvp::persist
{
namespace
{

struct PersistWorld
{
    nobench::Config cfg;
    engine::DataSet data;
    layout::Layout layout;

    PersistWorld()
    {
        cfg.numDocs = 400;
        cfg.seed = 777;
        data = nobench::generateDataSet(cfg);
        nobench::QuerySet qs(data, cfg);
        Rng rng(1);
        core::Partitioner p(
            data, nobench::representatives(qs, nobench::Mix::uniform(),
                                           rng));
        layout = p.run().layout;
    }
};

PersistWorld &
world()
{
    static PersistWorld w;
    return w;
}

TEST(Snapshot, RoundTripPreservesEverything)
{
    PersistWorld &w = world();
    std::string bytes = serialize(w.data, &w.layout);
    LoadResult r = deserialize(bytes);
    ASSERT_TRUE(r.ok) << r.error;

    // Catalog: names, ids, stats, doc count.
    ASSERT_EQ(r.data.catalog.attrCount(), w.data.catalog.attrCount());
    EXPECT_EQ(r.data.catalog.docCount(), w.data.catalog.docCount());
    for (storage::AttrId a = 0; a < w.data.catalog.attrCount(); ++a) {
        EXPECT_EQ(r.data.catalog.name(a), w.data.catalog.name(a));
        EXPECT_EQ(r.data.catalog.info(a).type,
                  w.data.catalog.info(a).type);
        EXPECT_DOUBLE_EQ(r.data.catalog.sparseness(a),
                         w.data.catalog.sparseness(a));
    }

    // Dictionary: ids stable.
    ASSERT_EQ(r.data.dict.size(), w.data.dict.size());
    for (storage::StringId id = 0; id < w.data.dict.size(); ++id)
        EXPECT_EQ(r.data.dict.text(id), w.data.dict.text(id));

    // Documents bit-identical.
    ASSERT_EQ(r.data.docs.size(), w.data.docs.size());
    for (size_t d = 0; d < w.data.docs.size(); ++d) {
        EXPECT_EQ(r.data.docs[d].oid, w.data.docs[d].oid);
        EXPECT_EQ(r.data.docs[d].attrs, w.data.docs[d].attrs);
    }

    // Layout preserved.
    ASSERT_TRUE(r.layout.has_value());
    EXPECT_TRUE(r.layout->equivalentTo(w.layout));
}

TEST(Snapshot, QueriesEqualAcrossReload)
{
    PersistWorld &w = world();
    LoadResult r = deserialize(serialize(w.data, &w.layout));
    ASSERT_TRUE(r.ok) << r.error;

    engine::Database before(w.data, w.layout, "before");
    engine::Database after(r.data, *r.layout, "after");
    engine::Executor exec_before(before);
    engine::Executor exec_after(after);

    nobench::QuerySet qs(w.data, w.cfg);
    Rng rng(2);
    for (int t = 0; t < nobench::kNumTemplates; ++t) {
        engine::Query q = qs.instantiate(t, rng);
        engine::ResultSet a = exec_before.run(q);
        engine::ResultSet b = exec_after.run(q);
        EXPECT_TRUE(a.equals(b)) << q.name;
        EXPECT_EQ(a.checksum, b.checksum) << q.name;
    }
}

TEST(Snapshot, LayoutIsOptional)
{
    PersistWorld &w = world();
    LoadResult r = deserialize(serialize(w.data));
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_FALSE(r.layout.has_value());
    EXPECT_EQ(r.data.docs.size(), w.data.docs.size());
}

TEST(Snapshot, FileRoundTrip)
{
    PersistWorld &w = world();
    std::string path = ::testing::TempDir() + "dvp_snapshot_test.bin";
    ASSERT_EQ(save(path, w.data, &w.layout), "");
    LoadResult r = load(path);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.data.docs.size(), w.data.docs.size());
    ASSERT_TRUE(r.layout.has_value());
    EXPECT_TRUE(r.layout->equivalentTo(w.layout));
    std::remove(path.c_str());
}

TEST(Snapshot, LoadMissingFileFailsCleanly)
{
    LoadResult r = load("/nonexistent/path/snapshot.bin");
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("cannot open"), std::string::npos);
}

TEST(Snapshot, RejectsBadMagic)
{
    LoadResult r = deserialize("NOTASNAPxxxxxxxxxxxxxxxx");
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("magic"), std::string::npos);
}

TEST(Snapshot, RejectsEveryTruncation)
{
    // Property: truncating a valid image at any section boundary (and
    // a spread of interior points) must fail cleanly, never crash.
    PersistWorld &w = world();
    std::string bytes = serialize(w.data, &w.layout);
    for (size_t len = 0; len < bytes.size();
         len += std::max<size_t>(1, bytes.size() / 97)) {
        LoadResult r = deserialize(bytes.substr(0, len));
        EXPECT_FALSE(r.ok) << "accepted truncation at " << len;
        EXPECT_FALSE(r.error.empty());
    }
}

TEST(Snapshot, RejectsTrailingGarbage)
{
    // Rev-2 images carry a trailing CRC, so appended garbage is an
    // integrity failure before the decoder ever sees the body.
    PersistWorld &w = world();
    std::string bytes = serialize(w.data);
    bytes += "garbage";
    LoadResult r = deserialize(bytes);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("CRC"), std::string::npos);
}

TEST(Snapshot, RejectsCorruptAttributeReference)
{
    // Flip a document's attribute id beyond the catalog: the loader
    // must refuse rather than produce a data set that panics later.
    engine::DataSet small;
    small.catalog.ensure("a");
    std::vector<json::FlatAttr> flat{{"a", json::JsonValue(1)}};
    small.addFlat(flat);
    std::string bytes = serialize(small);

    // The sole document slot's attr id is a u32 at a fixed offset from
    // the end: ... u64 ndocs | i64 oid | u32 nslots | u32 attr | i64
    // slot | u32 layout-flag | u32 crc.  Corrupt the attr field and
    // re-stamp the trailing CRC so the structural validator (not the
    // integrity check) is what rejects the image.
    size_t attr_off =
        bytes.size() - 4 /*crc*/ - 4 /*flag*/ - 8 /*slot*/ - 4;
    bytes[attr_off] = 0x7f;
    uint32_t crc = net::crc32(bytes.data(), bytes.size() - 4);
    std::memcpy(bytes.data() + bytes.size() - 4, &crc, 4);
    LoadResult r = deserialize(bytes);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("unknown attribute"), std::string::npos);
}

TEST(Snapshot, EmptyDataSetRoundTrips)
{
    engine::DataSet empty;
    LoadResult r = deserialize(serialize(empty));
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.data.docs.size(), 0u);
    EXPECT_EQ(r.data.catalog.attrCount(), 0u);
}

} // namespace
} // namespace dvp::persist
