/**
 * @file
 * Unit and property tests for the query engine (src/engine).
 *
 * The heart of this suite is the layout-invariance property: for every
 * NoBench query template, every vertical layout of the same DataSet
 * must return an identical result set and read the same logical cells
 * (checksum), per DESIGN.md invariant 2.
 */

#include <gtest/gtest.h>

#include "engine/database.hh"
#include "engine/executor.hh"
#include "engine/query.hh"
#include "json/parser.hh"
#include "nobench/generator.hh"
#include "nobench/queries.hh"
#include "perf/memory_hierarchy.hh"

namespace dvp::engine
{
namespace
{

using layout::Layout;
using storage::AttrId;
using storage::kNullSlot;
using storage::Slot;

/** Tiny hand-built data set with known contents. */
class TinyDb : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const char *docs[] = {
            R"({"a":1,"b":"x","c":10})",
            R"({"a":2,"c":20,"s1":"p"})",
            R"({"b":"y","d":true,"a":3})",
            R"({"a":4,"b":"x","c":40,"s1":"q"})",
            R"({"a":5,"c":50})",
        };
        for (const char *text : docs) {
            auto parsed = json::parse(text);
            ASSERT_TRUE(parsed.ok) << parsed.error;
            data.addObject(parsed.value);
        }
        a = data.catalog.find("a");
        b = data.catalog.find("b");
        c = data.catalog.find("c");
        d = data.catalog.find("d");
        s1 = data.catalog.find("s1");
        ASSERT_NE(a, storage::kNoAttr);
        ASSERT_NE(s1, storage::kNoAttr);
    }

    Slot
    str(const std::string &s) const
    {
        return storage::encodeString(data.dict.lookup(s));
    }

    DataSet data;
    AttrId a{}, b{}, c{}, d{}, s1{};
};

TEST_F(TinyDb, ProjectionSkipsAllNullRows)
{
    Database db(data, Layout::columnBased(data.catalog.allAttrs()),
                "col");
    Executor exec(db);
    Query q;
    q.kind = QueryKind::Project;
    q.projected = {s1};
    ResultSet rs = exec.run(q);
    ASSERT_EQ(rs.rowCount(), 2u); // only docs 1 and 3 have s1
    EXPECT_EQ(rs.oids, (std::vector<int64_t>{1, 3}));
    EXPECT_EQ(rs.rows[0][0], str("p"));
    EXPECT_EQ(rs.rows[1][0], str("q"));
}

TEST_F(TinyDb, ProjectionEmitsNullsForPartialRows)
{
    Database db(data, Layout::rowBased(data.catalog.allAttrs()), "row");
    Executor exec(db);
    Query q;
    q.kind = QueryKind::Project;
    q.projected = {b, c};
    ResultSet rs = exec.run(q);
    ASSERT_EQ(rs.rowCount(), 5u);
    // doc2 has b but no c.
    EXPECT_EQ(rs.rows[2][0], str("y"));
    EXPECT_TRUE(storage::isNull(rs.rows[2][1]));
}

TEST_F(TinyDb, SelectEqSingleRecord)
{
    Database db(data, Layout::fixedSize(data.catalog.allAttrs(), 2),
                "hy");
    Executor exec(db);
    Query q;
    q.kind = QueryKind::Select;
    q.selectAll = true;
    q.cond.op = CondOp::Eq;
    q.cond.attr = b;
    q.cond.lo = str("y");
    ResultSet rs = exec.run(q);
    ASSERT_EQ(rs.rowCount(), 1u);
    EXPECT_EQ(rs.oids[0], 2);
    EXPECT_EQ(rs.rows[0][a], 3);
    EXPECT_EQ(rs.rows[0][d], 1);
    EXPECT_TRUE(storage::isNull(rs.rows[0][c]));
}

TEST_F(TinyDb, SelectBetweenNumeric)
{
    Database db(data, Layout::columnBased(data.catalog.allAttrs()),
                "col");
    Executor exec(db);
    Query q;
    q.kind = QueryKind::Select;
    q.projected = {a, c};
    q.cond.op = CondOp::Between;
    q.cond.attr = c;
    q.cond.lo = 15;
    q.cond.hi = 45;
    ResultSet rs = exec.run(q);
    ASSERT_EQ(rs.rowCount(), 2u);
    EXPECT_EQ(rs.oids, (std::vector<int64_t>{1, 3}));
    EXPECT_EQ(rs.rows[0], (std::vector<Slot>{2, 20}));
    EXPECT_EQ(rs.rows[1], (std::vector<Slot>{4, 40}));
}

TEST_F(TinyDb, BetweenSkipsStringSlots)
{
    // Strings in a numeric range predicate never match (dyn typing).
    Database db(data, Layout::rowBased(data.catalog.allAttrs()), "row");
    Executor exec(db);
    Query q;
    q.kind = QueryKind::Select;
    q.projected = {b};
    q.cond.op = CondOp::Between;
    q.cond.attr = b; // b holds strings
    q.cond.lo = INT64_MIN + 1;
    q.cond.hi = INT64_MAX;
    EXPECT_EQ(exec.run(q).rowCount(), 0u);
}

TEST_F(TinyDb, SelectNoConditionReturnsEverything)
{
    Database db(data, Layout::fixedSize(data.catalog.allAttrs(), 3),
                "hy");
    Executor exec(db);
    Query q;
    q.kind = QueryKind::Select;
    q.selectAll = true;
    ResultSet rs = exec.run(q);
    EXPECT_EQ(rs.rowCount(), 5u);
}

TEST_F(TinyDb, AggregateCountsGroups)
{
    Database db(data, Layout::columnBased(data.catalog.allAttrs()),
                "col");
    Executor exec(db);
    Query q;
    q.kind = QueryKind::Aggregate;
    q.cond.op = CondOp::Between;
    q.cond.attr = a;
    q.cond.lo = 1;
    q.cond.hi = 4;
    q.groupBy = b;
    ResultSet rs = exec.run(q);
    // Groups among docs 0..3: b = "x" (docs 0, 3), "y" (doc 2),
    // NULL (doc 1).
    ASSERT_EQ(rs.rowCount(), 3u);
    std::map<Slot, Slot> groups;
    for (const auto &row : rs.rows)
        groups[row[0]] = row[1];
    EXPECT_EQ(groups[str("x")], 2);
    EXPECT_EQ(groups[str("y")], 1);
    EXPECT_EQ(groups[kNullSlot], 1);
}

TEST_F(TinyDb, JoinMatchesPairs)
{
    // Self-join ON b = b is degenerate; instead join s1 against b by
    // adding a doc whose b equals an s1 value.
    auto parsed = json::parse(R"({"a":6,"b":"p"})");
    ASSERT_TRUE(parsed.ok);
    data.addObject(parsed.value);

    Database db(data, Layout::fixedSize(data.catalog.allAttrs(), 2),
                "hy");
    Executor exec(db);
    Query q;
    q.kind = QueryKind::Join;
    q.selectAll = true;
    q.joinLeftAttr = s1; // doc1 ("p"), doc3 ("q")
    q.joinRightAttr = b; // "x","y","x",... and the new "p"
    q.cond.op = CondOp::Between;
    q.cond.attr = a;
    q.cond.lo = 0;
    q.cond.hi = 100;
    ResultSet rs = exec.run(q);
    ASSERT_EQ(rs.rowCount(), 1u);
    EXPECT_EQ(rs.rows[0], (std::vector<Slot>{1, 5})); // s1 of 1 == b of 5
}

TEST_F(TinyDb, InsertAppendsToAllTables)
{
    Database db(data, Layout::columnBased(data.catalog.allAttrs()),
                "col");
    Executor exec(db);
    std::vector<storage::Document> payload;
    {
        auto parsed = json::parse(R"({"a":7,"c":70})");
        ASSERT_TRUE(parsed.ok);
        data.addObject(parsed.value);
        payload.push_back(data.docs.back());
    }
    Query q12;
    q12.kind = QueryKind::Insert;
    q12.insertDocs = &payload;
    exec.run(q12);

    Query probe;
    probe.kind = QueryKind::Select;
    probe.projected = {c};
    probe.cond.op = CondOp::Eq;
    probe.cond.attr = a;
    probe.cond.lo = 7;
    ResultSet rs = exec.run(probe);
    ASSERT_EQ(rs.rowCount(), 1u);
    EXPECT_EQ(rs.rows[0][0], 70);
}

TEST_F(TinyDb, UnknownConditionColumnYieldsEmpty)
{
    Database db(data, Layout::rowBased(data.catalog.allAttrs()), "row");
    Executor exec(db);
    Query q;
    q.kind = QueryKind::Select;
    q.selectAll = true;
    q.cond.op = CondOp::Eq;
    q.cond.attr = 9999; // never registered
    EXPECT_EQ(exec.run(q).rowCount(), 0u);
}

TEST(ResultSet, EqualsIsOrderInsensitive)
{
    ResultSet a, b;
    a.rows = {{1, 2}, {3, 4}};
    b.rows = {{3, 4}, {1, 2}};
    EXPECT_TRUE(a.equals(b));
    EXPECT_EQ(a.digest(), b.digest());
    b.rows.push_back({5, 6});
    EXPECT_FALSE(a.equals(b));
    EXPECT_NE(a.digest(), b.digest());
}

TEST(ResultSet, DigestDistinguishesCellChanges)
{
    ResultSet a, b;
    a.rows = {{1, 2}};
    b.rows = {{1, 3}};
    EXPECT_NE(a.digest(), b.digest());
}

// ---------------------------------------------------------------------
// Layout-invariance property over the NoBench workload.
// ---------------------------------------------------------------------

struct NoBenchWorld
{
    nobench::Config cfg;
    DataSet data;
    std::vector<Query> queries;       ///< one instance per template
    std::vector<ResultSet> reference; ///< row-layout results

    NoBenchWorld()
    {
        cfg.numDocs = 800;
        cfg.seed = 2024;
        data = nobench::generateDataSet(cfg);
        nobench::QuerySet qs(data, cfg);
        Rng rng(555);
        for (int t = 0; t < nobench::kNumTemplates; ++t)
            queries.push_back(qs.instantiate(t, rng));

        Database row(data, Layout::rowBased(data.catalog.allAttrs()),
                     "row");
        Executor exec(row);
        for (const auto &q : queries)
            reference.push_back(exec.run(q));
    }
};

NoBenchWorld &
world()
{
    static NoBenchWorld w;
    return w;
}

class LayoutInvariance
    : public ::testing::TestWithParam<std::tuple<const char *, int>>
{
  protected:
    static Layout
    makeLayout(const std::string &name, const DataSet &data)
    {
        auto attrs = data.catalog.allAttrs();
        if (name == "column")
            return Layout::columnBased(attrs);
        if (name == "hybrid8")
            return Layout::fixedSize(attrs, 8);
        if (name == "hybrid64")
            return Layout::fixedSize(attrs, 64);
        if (name == "hybrid200")
            return Layout::fixedSize(attrs, 200);
        return Layout::rowBased(attrs);
    }
};

TEST_P(LayoutInvariance, ResultsMatchRowLayout)
{
    auto [layout_name, qidx] = GetParam();
    NoBenchWorld &w = world();
    Database db(w.data, makeLayout(layout_name, w.data), layout_name);
    Executor exec(db);
    ResultSet rs = exec.run(w.queries[qidx]);
    const ResultSet &ref = w.reference[qidx];
    EXPECT_EQ(rs.rowCount(), ref.rowCount());
    EXPECT_TRUE(rs.equals(ref));
    EXPECT_EQ(rs.digest(), ref.digest());
    EXPECT_EQ(rs.checksum, ref.checksum);
}

INSTANTIATE_TEST_SUITE_P(
    AllLayoutsAllQueries, LayoutInvariance,
    ::testing::Combine(
        ::testing::Values("column", "hybrid8", "hybrid64", "hybrid200"),
        ::testing::Range(0, static_cast<int>(nobench::kNumTemplates))),
    [](const auto &info) {
        return std::string(std::get<0>(info.param)) + "_Q" +
               std::to_string(std::get<1>(info.param) + 1);
    });

TEST(TracedExecution, MatchesUntracedResults)
{
    NoBenchWorld &w = world();
    Database db(w.data, Layout::fixedSize(w.data.catalog.allAttrs(), 16),
                "hy16");
    Executor exec(db);
    perf::MemoryHierarchy mh;
    for (int t = 0; t < nobench::kNumTemplates; ++t) {
        ResultSet traced = exec.run(w.queries[t], mh);
        EXPECT_TRUE(traced.equals(w.reference[t])) << "Q" << t + 1;
        EXPECT_EQ(traced.checksum, w.reference[t].checksum);
    }
    EXPECT_GT(mh.counters().accesses, 0u);
}

TEST(TracedExecution, ScansTouchTableMemory)
{
    NoBenchWorld &w = world();
    Database db(w.data, Layout::rowBased(w.data.catalog.allAttrs()),
                "row");
    Executor exec(db);
    perf::MemoryHierarchy mh;
    exec.run(w.queries[nobench::kQ1], mh);
    // Q1 projects two columns from the full-width table: at least one
    // touch per record.
    EXPECT_GE(mh.counters().accesses, w.data.docs.size());
}

TEST(Database, TableIVStyleAccounting)
{
    NoBenchWorld &w = world();
    auto attrs = w.data.catalog.allAttrs();

    Database row(w.data, Layout::rowBased(attrs), "row");
    Database col(w.data, Layout::columnBased(attrs), "col");

    EXPECT_EQ(row.tableCount(), 1u);
    EXPECT_EQ(col.tableCount(), attrs.size());

    // The row layout materializes the NULLs sparse data implies; the
    // column layout stores none (sparse omission).
    EXPECT_GT(row.nullCells(), 0u);
    EXPECT_EQ(col.nullCells(), 0u);
    EXPECT_GT(row.storageBytes(), col.storageBytes());
    EXPECT_GT(row.buildSeconds(), 0.0);
}

TEST(Database, LocateFindsEveryAttribute)
{
    NoBenchWorld &w = world();
    Database db(w.data, Layout::fixedSize(w.data.catalog.allAttrs(), 7),
                "hy");
    for (AttrId a : w.data.catalog.allAttrs()) {
        AttrLoc loc = db.locate(a);
        ASSERT_GE(loc.table, 0);
        const auto &schema = db.table(loc.table).schema();
        EXPECT_EQ(schema[loc.col], a);
    }
    EXPECT_EQ(db.locate(99999).table, -1);
}

TEST(EdgeCases, SingleDocumentDatabase)
{
    DataSet data;
    auto parsed = json::parse(R"({"a":1,"b":"x"})");
    ASSERT_TRUE(parsed.ok);
    data.addObject(parsed.value);
    Database db(data, Layout::columnBased(data.catalog.allAttrs()),
                "one");
    Executor exec(db);

    Query q;
    q.kind = QueryKind::Select;
    q.selectAll = true;
    q.cond.op = CondOp::Eq;
    q.cond.attr = data.catalog.find("a");
    q.cond.lo = 1;
    EXPECT_EQ(exec.run(q).rowCount(), 1u);
    q.cond.lo = 2;
    EXPECT_EQ(exec.run(q).rowCount(), 0u);
}

TEST(EdgeCases, SelectAllProjectionEmitsEveryDocument)
{
    // Project with selectAll exercises the merge-scan-everything path.
    NoBenchWorld &w = world();
    Database db(w.data,
                Layout::fixedSize(w.data.catalog.allAttrs(), 33),
                "edge");
    Executor exec(db);
    Query q;
    q.kind = QueryKind::Project;
    q.selectAll = true;
    ResultSet rs = exec.run(q);
    EXPECT_EQ(rs.rowCount(), w.data.docs.size());
}

TEST(EdgeCases, BetweenWithEmptyRange)
{
    NoBenchWorld &w = world();
    Database db(w.data, Layout::rowBased(w.data.catalog.allAttrs()),
                "edge2");
    Executor exec(db);
    Query q;
    q.kind = QueryKind::Select;
    q.projected = {w.data.catalog.find("num")};
    q.cond.op = CondOp::Between;
    q.cond.attr = w.data.catalog.find("num");
    q.cond.lo = 10;
    q.cond.hi = 9; // lo > hi: matches nothing, must not trip anything
    EXPECT_EQ(exec.run(q).rowCount(), 0u);
}

TEST(EdgeCases, AggregateWithoutMatchesIsEmpty)
{
    NoBenchWorld &w = world();
    Database db(w.data, Layout::rowBased(w.data.catalog.allAttrs()),
                "edge3");
    Executor exec(db);
    Query q;
    q.kind = QueryKind::Aggregate;
    q.selectAll = true;
    q.cond.op = CondOp::Between;
    q.cond.attr = w.data.catalog.find("num");
    q.cond.lo = -100;
    q.cond.hi = -1; // generator never emits negatives
    q.groupBy = w.data.catalog.find("thousandth");
    EXPECT_EQ(exec.run(q).rowCount(), 0u);
}

TEST(EdgeCases, JoinWithNoLeftMatchesIsEmpty)
{
    NoBenchWorld &w = world();
    Database db(w.data, Layout::fixedSize(w.data.catalog.allAttrs(), 9),
                "edge4");
    Executor exec(db);
    Query q;
    q.kind = QueryKind::Join;
    q.selectAll = true;
    q.joinLeftAttr = w.data.catalog.find("nested_obj.str");
    q.joinRightAttr = w.data.catalog.find("str1");
    q.cond.op = CondOp::Between;
    q.cond.attr = w.data.catalog.find("num");
    q.cond.lo = -5;
    q.cond.hi = -1;
    EXPECT_EQ(exec.run(q).rowCount(), 0u);
}

} // namespace
} // namespace dvp::engine
