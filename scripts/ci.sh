#!/usr/bin/env bash
# CI entry point: a plain release build + full test suite, then a
# ThreadSanitizer build (the morsel executor and the adaptive engine's
# background repartition are the race surface) and an AddressSanitizer
# build (plan-cache lifetime: cached plans vs database swaps).
#
# Sanitizer runs are ~10-20x slower, so the heavier tests read
# DVP_TEST_DOCS to scale their data set down without losing the thread
# interleavings.
#
# Usage: scripts/ci.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "=== release build ==="
cmake -B build-ci -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-ci -j "$JOBS"
ctest --test-dir build-ci --output-on-failure -j "$JOBS"

echo "=== observability smoke ==="
# A tiny bench run must produce valid NDJSON, a parseable Prometheus
# dump, and a span trace that ends with a summary record.
OBS_TMP="$(mktemp -d)"
trap 'rm -rf "$OBS_TMP"' EXIT
./build-ci/bench/bench_fig3_partition_size --docs 400 --repeats 1 \
    --json "$OBS_TMP/bench.ndjson" --metrics "$OBS_TMP/metrics.prom" \
    --trace "$OBS_TMP/trace.ndjson" > /dev/null
python3 - "$OBS_TMP" <<'EOF'
import json, sys
tmp = sys.argv[1]
rows = [json.loads(l) for l in open(f"{tmp}/bench.ndjson")]
assert rows and all(r["bench"] == "fig3_partition_size" for r in rows)
prom = open(f"{tmp}/metrics.prom").read()
assert "# TYPE dvp_queries_total counter" in prom, prom[:200]
assert "dvp_rows_scanned_total" in prom
spans = [json.loads(l) for l in open(f"{tmp}/trace.ndjson")]
assert spans[-1]["type"] == "trace_summary" and spans[-1]["recorded"] > 0
assert any(s.get("name") == "query" for s in spans)
print(f"obs smoke: {len(rows)} bench rows, {len(spans)-1} spans ok")
EOF

echo "=== scan kernels ==="
# The kernel suite registers twice in ctest (default dispatch and
# DVP_FORCE_SCALAR=1); run both registrations explicitly so a filter
# change elsewhere can never silently drop one dispatch outcome, then
# smoke the kernel bench: every form must reproduce the row-loop match
# vector (the bench aborts on disagreement) and emit parseable NDJSON.
ctest --test-dir build-ci --output-on-failure -R 'test_kernels'
./build-ci/bench/bench_scan_kernels --docs 4000 --repeats 1 \
    --json "$OBS_TMP/kernels.ndjson" > /dev/null
DVP_FORCE_SCALAR=1 ./build-ci/bench/bench_scan_kernels --docs 4000 \
    --repeats 1 > /dev/null
python3 - "$OBS_TMP" <<'EOF'
import json, sys
rows = [json.loads(l) for l in open(f"{sys.argv[1]}/kernels.ndjson")]
assert rows and all(r["bench"] == "scan_kernels" for r in rows)
metrics = {r["metric"] for r in rows}
assert {"rows_per_sec_baseline", "rows_per_sec_scalar",
        "speedup_scalar", "block_skip_ratio"} <= metrics, metrics
print(f"scan kernels smoke: {len(rows)} NDJSON rows ok")
EOF

echo "=== tape parse ==="
# The tape-vs-DOM suite registers twice in ctest (default dispatch and
# DVP_FORCE_SCALAR=1); run both registrations explicitly, then smoke
# the LOAD bench under both dispatch outcomes.  The bench itself is a
# differential check at data scale: every tape-loaded DataSet is
# compared document-by-document against the serial DOM load and the
# bench aborts on any disagreement.  The NDJSON must carry the
# throughput schema, and the single-thread tape speedup over DOM must
# clear a floor — 2x is deliberately far under the ~3x a quiet
# machine measures (EXPERIMENTS.md E15), because CI boxes are noisy.
ctest --test-dir build-ci --output-on-failure -R 'test_json_tape'
./build-ci/bench/bench_load --docs 4000 --repeats 3 \
    --json "$OBS_TMP/load.ndjson" > /dev/null
DVP_FORCE_SCALAR=1 ./build-ci/bench/bench_load --docs 4000 \
    --repeats 1 > /dev/null
python3 - "$OBS_TMP" <<'EOF'
import json, sys
rows = [json.loads(l) for l in open(f"{sys.argv[1]}/load.ndjson")]
assert rows and all(r["bench"] == "load" for r in rows)
assert all("rss_peak_bytes" in r for r in rows)
metrics = {r["metric"] for r in rows}
assert {"docs_per_sec", "mb_per_sec", "speedup_vs_dom1", "load_ms",
        "index_ns", "walk_ns", "encode_ns"} <= metrics, metrics
speed = {(r["engine"], r["query"]): r["value"] for r in rows
         if r["metric"] == "speedup_vs_dom1"}
tape1 = max(v for (e, q), v in speed.items()
            if e.startswith("tape") and q == "t1")
assert tape1 >= 2.0, speed
falls = [r["value"] for r in rows if r["metric"] == "fallback_docs"]
assert falls and all(v == 0 for v in falls), falls
print(f"tape parse smoke: {len(rows)} NDJSON rows, "
      f"tape {tape1:.2f}x DOM at 1 thread ok")
EOF

echo "=== compressed blocks ==="
# The compressed-block bench builds plain/compressed twins and aborts
# on any result-digest disagreement, so a tiny run is itself a
# differential check; run it under both dispatch outcomes, then
# validate the NDJSON carries the footprint and slowdown metrics.
./build-ci/bench/bench_compression --docs 5000 --repeats 1 \
    --json "$OBS_TMP/compression.ndjson" > /dev/null
DVP_FORCE_SCALAR=1 ./build-ci/bench/bench_compression --docs 5000 \
    --repeats 1 > /dev/null
python3 - "$OBS_TMP" <<'EOF'
import json, sys
rows = [json.loads(l) for l in open(f"{sys.argv[1]}/compression.ndjson")]
assert rows and all(r["bench"] == "compression" for r in rows)
assert all("rss_peak_bytes" in r for r in rows)
metrics = {r["metric"] for r in rows if "metric" in r}
assert {"bytes_raw", "bytes_compressed", "footprint_ratio",
        "scan_rows_per_sec_compressed", "slowdown_pct",
        "mean_slowdown_pct"} <= metrics, metrics
ratios = {r["engine"]: r["value"] for r in rows
          if r.get("metric") == "footprint_ratio"}
assert ratios["row"] > 3, ratios
print(f"compression smoke: {len(rows)} NDJSON rows, "
      f"row ratio {ratios['row']:.1f}x ok")
EOF

echo "=== network server ==="
# End-to-end over real sockets: dvpd on an ephemeral port discovered
# via --port-file, a dvp_client smoke (query + EXPLAIN + stats), a
# graceful SIGTERM drain, then a short load-generator run whose NDJSON
# must carry QPS and tail-latency metrics.
./build-ci/examples/dvpd --gen 500 --port 0 \
    --port-file "$OBS_TMP/dvpd.port" > "$OBS_TMP/dvpd.log" 2>&1 &
DVPD_PID=$!
for _ in $(seq 50); do
    [ -s "$OBS_TMP/dvpd.port" ] && break
    sleep 0.1
done
DVPD_PORT="$(cat "$OBS_TMP/dvpd.port")"
./build-ci/examples/dvp_client --port "$DVPD_PORT" --stats \
    "SELECT COUNT(*) FROM t GROUP BY thousandth" \
    "EXPLAIN SELECT str1, num FROM t" > "$OBS_TMP/client.out"
grep -q "^group" "$OBS_TMP/client.out"
grep -q "requests_total" "$OBS_TMP/client.out"
kill -TERM "$DVPD_PID"
wait "$DVPD_PID"
grep -q "drained" "$OBS_TMP/dvpd.log"
./build-ci/bench/bench_server_throughput --docs 2000 --duration 2 \
    --connections 4 --json "$OBS_TMP/server.ndjson" > /dev/null
python3 - "$OBS_TMP" <<'EOF'
import json, sys
rows = [json.loads(l) for l in open(f"{sys.argv[1]}/server.ndjson")]
assert rows and all(r["bench"] == "server_throughput" for r in rows)
metrics = {r["metric"]: r["value"] for r in rows}
assert {"qps", "rows_per_s", "p50_ms", "p95_ms", "p99_ms"} <= \
    metrics.keys(), metrics
assert metrics["qps"] > 0 and metrics["p99_ms"] >= metrics["p50_ms"]
assert metrics["errors"] == 0, metrics
print(f"server smoke: {metrics['qps']:.0f} QPS, "
      f"p99 {metrics['p99_ms']:.2f} ms ok")
EOF

echo "=== request-scoped observability ==="
# dvpd with the HTTP scrape endpoint and slow-query log: /metrics and
# /healthz must answer with valid Prometheus text, a traced join must
# leave a parseable NDJSON slow-query record, EXPLAIN ANALYZE must
# render over the wire, and a pre-TLV (level-1) client must complete
# queries unchanged.
./build-ci/examples/dvpd --gen 2000 --port 0 \
    --port-file "$OBS_TMP/dvpd2.port" \
    --http-port 0 --http-port-file "$OBS_TMP/http.port" \
    --slow-ms 1 --slow-query-log "$OBS_TMP/slow.ndjson" \
    > "$OBS_TMP/dvpd2.log" 2>&1 &
DVPD_PID=$!
for _ in $(seq 50); do
    [ -s "$OBS_TMP/dvpd2.port" ] && [ -s "$OBS_TMP/http.port" ] && break
    sleep 0.1
done
DVPD_PORT="$(cat "$OBS_TMP/dvpd2.port")"
HTTP_PORT="$(cat "$OBS_TMP/http.port")"
JOIN="SELECT * FROM t AS l INNER JOIN t AS r \
ON l.nested_obj.str = r.str1 WHERE l.num BETWEEN 0 AND 999999"
for _ in $(seq 10); do
    ./build-ci/examples/dvp_client --port "$DVPD_PORT" \
        --trace-id c1f00ddeadbeef01 "$JOIN" > /dev/null
    [ -s "$OBS_TMP/slow.ndjson" ] && break
done
./build-ci/examples/dvp_client --port "$DVPD_PORT" \
    "EXPLAIN ANALYZE SELECT str1, num FROM t" | grep -q "execution:"
./build-ci/examples/dvp_client --port "$DVPD_PORT" --legacy --stats \
    "SELECT str1, num FROM t" > "$OBS_TMP/legacy.out"
grep -q "requests_total" "$OBS_TMP/legacy.out"
python3 - "$OBS_TMP" "$HTTP_PORT" <<'EOF'
import json, sys, urllib.request
tmp, port = sys.argv[1], sys.argv[2]
base = f"http://127.0.0.1:{port}"
prom = urllib.request.urlopen(base + "/metrics", timeout=5).read().decode()
# Prometheus text format: non-comment lines are "name[{labels}] value".
names = set()
for line in prom.splitlines():
    if not line or line.startswith("#"):
        continue
    name, value = line.rsplit(None, 1)
    float(value)
    names.add(name.split("{")[0])
assert "dvp_server_requests_total" in names, sorted(names)[:20]
assert "dvp_queries_total" in names
health = urllib.request.urlopen(base + "/healthz", timeout=5).read().decode()
assert health.strip() == "ok", health
recs = [json.loads(l) for l in open(f"{tmp}/slow.ndjson")]
assert recs, "no slow-query records after 10 join executions"
r = recs[0]
assert r["statement"].startswith("SELECT * FROM t AS l"), r
assert r["trace_id"] == "c1f00ddeadbeef01", r
assert r["exec_ns"] > 0 and r["layout_epoch"] > 0, r
assert r["stats"]["rows_out"] > 0, r
print(f"request obs smoke: {len(names)} metric families, "
      f"{len(recs)} slow-query records ok")
EOF
kill -TERM "$DVPD_PID"
wait "$DVPD_PID"
# Twin load run, observability off vs on: the local bar is 5%, but CI
# machines are noisy, so gate on a generous threshold here.
./build-ci/bench/bench_server_throughput --docs 2000 --duration 2 \
    --connections 2 --obs-overhead --max-overhead-pct 25 \
    --json "$OBS_TMP/obs_overhead.ndjson" > /dev/null
python3 - "$OBS_TMP" <<'EOF'
import json, sys
rows = [json.loads(l) for l in open(f"{sys.argv[1]}/obs_overhead.ndjson")]
m = {r["metric"]: r["value"] for r in rows}
assert m["qps_on"] > 0 and m["qps_off"] > 0, m
print(f"obs overhead: {m['overhead_pct']:.2f}% ok")
EOF

echo "=== live ingest ==="
# The write path end to end: dvpd with --allow-insert takes wire
# INSERTs (single and batch via --exec), the doc count and delta
# gauges move, a read-only dvpd answers INSERT with the typed
# READ_ONLY error, then the mixed read/write load generator must
# sustain reads while folding deltas and emit parseable NDJSON.
./build-ci/examples/dvpd --gen 500 --port 0 --allow-insert \
    --port-file "$OBS_TMP/dvpd3.port" > "$OBS_TMP/dvpd3.log" 2>&1 &
DVPD_PID=$!
for _ in $(seq 50); do
    [ -s "$OBS_TMP/dvpd3.port" ] && break
    sleep 0.1
done
DVPD_PORT="$(cat "$OBS_TMP/dvpd3.port")"
cat > "$OBS_TMP/inserts.sql" <<'EOF'
-- two INSERT statements (three documents), then read them back
INSERT INTO nobench VALUES ('{"ci_q": 1, "ci_v": 10}')
INSERT INTO nobench VALUES ('{"ci_q": 2, "ci_v": 20}'), ('{"ci_q": 3, "ci_v": 30}')
SELECT ci_q, ci_v FROM t WHERE ci_q BETWEEN 1 AND 3
EOF
./build-ci/examples/dvp_client --port "$DVPD_PORT" --stats \
    --exec "$OBS_TMP/inserts.sql" > "$OBS_TMP/ingest.out"
grep -q "INSERT 1 (501 docs" "$OBS_TMP/ingest.out"
grep -q "INSERT 2 (503 docs" "$OBS_TMP/ingest.out"
grep -q "3 row(s)" "$OBS_TMP/ingest.out"
grep -Eq "delta_rows +3" "$OBS_TMP/ingest.out"
grep -Eq "docs +503" "$OBS_TMP/ingest.out"
kill -TERM "$DVPD_PID"
wait "$DVPD_PID"
# Read-only server: the same INSERT must fail typed, not crash.
./build-ci/examples/dvpd --gen 100 --port 0 \
    --port-file "$OBS_TMP/dvpd4.port" > "$OBS_TMP/dvpd4.log" 2>&1 &
DVPD_PID=$!
for _ in $(seq 50); do
    [ -s "$OBS_TMP/dvpd4.port" ] && break
    sleep 0.1
done
DVPD_PORT="$(cat "$OBS_TMP/dvpd4.port")"
if ./build-ci/examples/dvp_client --port "$DVPD_PORT" \
    "INSERT INTO nobench VALUES ('{\"x\": 1}')" \
    > /dev/null 2> "$OBS_TMP/readonly.err"; then
    echo "read-only dvpd accepted an INSERT" >&2; exit 1
fi
grep -q "READ_ONLY" "$OBS_TMP/readonly.err"
kill -TERM "$DVPD_PID"
wait "$DVPD_PID"
./build-ci/bench/bench_ingest --docs 2000 --duration 2 \
    --connections 2 --rate 100 --writers 2 --write-rate 300 \
    --fold-rows 512 --json "$OBS_TMP/ingest.ndjson" > /dev/null
python3 - "$OBS_TMP" <<'EOF'
import json, sys
rows = [json.loads(l) for l in open(f"{sys.argv[1]}/ingest.ndjson")]
assert rows and all(r["bench"] == "ingest" for r in rows)
m = {(r["query"], r["metric"]): r["value"] for r in rows}
assert m[("insert_only", "inserts_per_s")] > 0, m
assert m[("insert_only", "folds")] >= 1, m
assert m[("read_only", "qps")] > 0 and m[("mixed", "qps")] > 0, m
assert m[("mixed", "inserts_per_s")] > 0, m
print(f"ingest smoke: {m[('insert_only', 'inserts_per_s')]:.0f} "
      f"inserts/s, {m[('insert_only', 'folds')]:.0f} folds, "
      f"mixed p95 {m[('mixed', 'p95_ms')]:.2f} ms ok")
EOF

echo "=== durability ==="
# Crash recovery end to end over real sockets: dvpd with a data
# directory (fsync=always) takes acked wire INSERTs and a CHECKPOINT,
# then an insert storm is kill -9'd mid-stream.  The restart must
# recover at least every acked document and answer the reference
# query byte-identically.
DUR_DIR="$OBS_TMP/durdata"
./build-ci/examples/dvpd --gen 300 --port 0 --allow-insert \
    --data-dir "$DUR_DIR" --fsync always \
    --port-file "$OBS_TMP/dvpd5.port" > "$OBS_TMP/dvpd5.log" 2>&1 &
DVPD_PID=$!
for _ in $(seq 50); do
    [ -s "$OBS_TMP/dvpd5.port" ] && break
    sleep 0.1
done
DVPD_PORT="$(cat "$OBS_TMP/dvpd5.port")"
grep -q "initial checkpoint" "$OBS_TMP/dvpd5.log"
DUR_SELECT="SELECT dur_k, dur_v FROM t WHERE dur_k BETWEEN 1 AND 3"
./build-ci/examples/dvp_client --port "$DVPD_PORT" \
    "INSERT INTO nobench VALUES ('{\"dur_k\": 1, \"dur_v\": 11}')" \
    "CHECKPOINT" \
    "INSERT INTO nobench VALUES ('{\"dur_k\": 2, \"dur_v\": 22}'), ('{\"dur_k\": 3, \"dur_v\": 33}')" \
    "$DUR_SELECT" > "$OBS_TMP/dur_ref.out"
grep -q "INSERT 1 (301 docs" "$OBS_TMP/dur_ref.out"
grep -q "CHECKPOINT (snapshot-" "$OBS_TMP/dur_ref.out"
grep -q "INSERT 2 (303 docs" "$OBS_TMP/dur_ref.out"
# Insert storm, killed -9 mid-stream: the client's acked count is the
# durability floor.
python3 - > "$OBS_TMP/storm.sql" <<'EOF'
for i in range(500):
    print(f'INSERT INTO nobench VALUES (\'{{"storm": {i}}}\')')
EOF
./build-ci/examples/dvp_client --port "$DVPD_PORT" \
    --exec "$OBS_TMP/storm.sql" > "$OBS_TMP/storm.out" 2>&1 &
STORM_PID=$!
sleep 0.7
kill -9 "$DVPD_PID"
wait "$DVPD_PID" 2>/dev/null || true
wait "$STORM_PID" 2>/dev/null || true
ACKED=$(grep -c "^INSERT 1" "$OBS_TMP/storm.out" || true)
echo "storm: $ACKED inserts acked before kill -9"
# Restart on the same directory: recovery must cover every ack.
./build-ci/examples/dvpd --port 0 --allow-insert \
    --data-dir "$DUR_DIR" --fsync always \
    --port-file "$OBS_TMP/dvpd6.port" > "$OBS_TMP/dvpd6.log" 2>&1 &
DVPD_PID=$!
for _ in $(seq 50); do
    [ -s "$OBS_TMP/dvpd6.port" ] && break
    sleep 0.1
done
DVPD_PORT="$(cat "$OBS_TMP/dvpd6.port")"
grep -q "dvpd: recovered" "$OBS_TMP/dvpd6.log"
RECOVERED=$(sed -n 's/^dvpd: recovered \([0-9]*\) docs.*/\1/p' \
    "$OBS_TMP/dvpd6.log")
[ "$RECOVERED" -ge $((303 + ACKED)) ] || {
    echo "recovered $RECOVERED docs < 303 + $ACKED acked" >&2; exit 1; }
./build-ci/examples/dvp_client --port "$DVPD_PORT" --stats \
    "$DUR_SELECT" > "$OBS_TMP/dur_post.out"
grep -Eq "recovered_docs +$RECOVERED" "$OBS_TMP/dur_post.out"
# The reference rows must come back byte-identical after recovery.
grep -A 100 "^dur_k" "$OBS_TMP/dur_ref.out" | head -4 \
    > "$OBS_TMP/dur_ref.rows"
grep -A 100 "^dur_k" "$OBS_TMP/dur_post.out" | head -4 \
    > "$OBS_TMP/dur_post.rows"
diff "$OBS_TMP/dur_ref.rows" "$OBS_TMP/dur_post.rows"
kill -TERM "$DVPD_PID"
wait "$DVPD_PID"
# Recovery bench smoke: the NDJSON must carry every E16 metric.
./build-ci/bench/bench_recovery --docs 2000 \
    --json "$OBS_TMP/recovery.ndjson" > /dev/null
python3 - "$OBS_TMP" <<'EOF'
import json, sys
rows = [json.loads(l) for l in open(f"{sys.argv[1]}/recovery.ndjson")]
assert rows and all(r["bench"] == "recovery" for r in rows)
assert all("rss_peak_bytes" in r for r in rows)
m = {(r["query"], r["metric"]): r["value"] for r in rows}
assert m[("wal_fsync_always", "wal_docs_per_sec")] > 0, m
assert m[("wal_fsync_none", "wal_docs_per_sec")] > 0, m
assert m[("checkpoint", "checkpoint_mb_per_sec")] > 0, m
assert m[("replay", "replay_docs_per_sec")] > 0, m
assert m[("restart", "restart_ms")] > 0, m
print(f"recovery smoke: replay "
      f"{m[('replay', 'replay_docs_per_sec')]:.0f} docs/s, "
      f"restart {m[('restart', 'restart_ms')]:.1f} ms ok")
EOF
echo "durability smoke: $RECOVERED docs recovered, rows identical ok"

echo "=== thread-sanitizer build ==="
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DDVP_SANITIZE=thread
cmake --build build-tsan -j "$JOBS"
DVP_TEST_DOCS=800 ctest --test-dir build-tsan --output-on-failure \
    -j "$JOBS" -R 'test_parallel|test_util|test_adaptive|test_obs|test_plan|test_kernels|test_compress|test_server|test_analyze|test_ingest|test_json_tape|test_durability'

echo "=== address-sanitizer build ==="
# ASan catches lifetime bugs the plan cache could introduce: a cached
# plan outliving its Database (epoch guard), swap invalidation racing
# executions, and layout mutations under randomized move sequences.
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DDVP_SANITIZE=address
cmake --build build-asan -j "$JOBS"
DVP_TEST_DOCS=800 ctest --test-dir build-asan --output-on-failure \
    -j "$JOBS" -R 'test_plan|test_adaptive|test_layout|test_kernels|test_compress|test_server|test_analyze|test_ingest|test_json_tape|test_durability'

echo "ci.sh: all suites passed"
