#!/usr/bin/env bash
# CI entry point: a plain release build + full test suite, then a
# ThreadSanitizer build + full test suite (the morsel executor and the
# adaptive engine's background repartition are the race surface).
#
# TSan is ~10-20x slower, so the parallel tests read DVP_TEST_DOCS to
# scale their data set down without losing the thread interleavings.
#
# Usage: scripts/ci.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "=== release build ==="
cmake -B build-ci -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-ci -j "$JOBS"
ctest --test-dir build-ci --output-on-failure -j "$JOBS"

echo "=== thread-sanitizer build ==="
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DDVP_SANITIZE=thread
cmake --build build-tsan -j "$JOBS"
DVP_TEST_DOCS=800 ctest --test-dir build-tsan --output-on-failure \
    -j "$JOBS" -R 'test_parallel|test_util|test_adaptive'

echo "ci.sh: all suites passed"
